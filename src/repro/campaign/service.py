"""``repro serve`` — the artifact API over the campaign cache.

A lightweight asyncio HTTP server (stdlib only — ``asyncio`` streams
plus a minimal hand-rolled request parser, no new runtime
dependencies) that answers the paper's experiment queries straight
from the content-addressed campaign cache, with the cache as its CDN:

========================================  ===============================
endpoint                                  answer
========================================  ===============================
``GET /table1/<circuit>?seed=&overrides``  the cached Table-I row
``GET /flow/<circuit>?seed=&overrides=``   the full flow artefact
``GET /figure2``                           the Figure-2 leakage artefact
``GET /artifact/<cache-key>``              poll a pending computation
``GET /healthz``                           liveness probe
``GET /metrics``                           hit/miss/queue-depth/latency
========================================  ===============================

``overrides`` is a URL-encoded JSON object of
:class:`~repro.core.config.FlowConfig` fields patched onto the
service's base config; the cache key is derived through
:func:`repro.campaign.runner.job_identity` — the *same* derivation the
campaign runner and queue workers use, so anything any of them
computed is a hit here.

A cache **hit** returns the stored artefact JSON with its content hash
as a strong ``ETag`` (``If-None-Match`` round-trips as ``304 Not
Modified``, no body).  A **miss** either computes inline
(``compute_on_miss=True``; the flow runs on a worker thread via
``asyncio.to_thread`` behind a per-key lock, so concurrent requests
for the same artefact compute once and ``/healthz`` stays responsive)
or, when the service fronts a :class:`~repro.campaign.queue.WorkQueue`,
enqueues the job (deduplicated) and answers ``202 Accepted`` with a
poll URL — any ``repro worker`` draining that queue completes it and
the next poll is a hit.  With neither, misses are ``404``.

The server is deliberately minimal: ``GET`` only, one request per
connection (``Connection: close``), JSON everywhere.  It is an
artefact cache front, not a general web framework.
"""

from __future__ import annotations

import asyncio
import dataclasses
import hashlib
import json
import os
import threading
import time
import urllib.parse
from typing import Any

import repro.chaos as chaos
from repro.campaign.cache import ResultCache
from repro.campaign.manifest import CampaignJob
from repro.campaign.queue import WorkQueue
from repro.campaign.runner import (
    FIGURE2_ARTEFACT_KIND,
    FLOW_ARTEFACT_KIND,
    execute_job,
    job_identity,
)
from repro.errors import ConfigError, ReproError, ServiceError
from repro.obs.metrics import get_registry
from repro.obs.trace import record_event
from repro.utils.hashing import package_fingerprint

__all__ = [
    "ArtifactService",
    "ServiceMetrics",
    "ServiceServer",
    "run_server",
]

_MAX_REQUEST_BYTES = 16 * 1024

_STATUS_PHRASES = {
    200: "OK",
    202: "Accepted",
    304: "Not Modified",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    500: "Internal Server Error",
    503: "Service Unavailable",
    504: "Gateway Timeout",
}


def content_etag(body: bytes) -> str:
    """Strong ETag: the SHA-256 content hash of the response body."""
    return f'"{hashlib.sha256(body).hexdigest()}"'


@dataclasses.dataclass
class ServiceMetrics:
    """Counters the ``/metrics`` endpoint exposes."""

    requests: int = 0
    hits: int = 0
    misses: int = 0
    not_modified: int = 0
    computed: int = 0
    enqueued: int = 0
    errors: int = 0
    #: Connections refused with 503 at the ``max_connections`` cap.
    shed: int = 0
    #: Requests cut off with 504 at the ``request_timeout_s`` budget.
    timeouts: int = 0
    latency_total_ms: float = 0.0
    latency_max_ms: float = 0.0

    def observe(self, elapsed_ms: float) -> None:
        self.requests += 1
        self.latency_total_ms += elapsed_ms
        self.latency_max_ms = max(self.latency_max_ms, elapsed_ms)

    def snapshot(self) -> dict[str, Any]:
        payload = dataclasses.asdict(self)
        payload["latency_avg_ms"] = (
            self.latency_total_ms / self.requests if self.requests
            else 0.0)
        return payload


class _Response:
    """One HTTP response about to be written."""

    def __init__(self, status: int, payload: Any = None, *,
                 headers: dict[str, str] | None = None,
                 body: bytes | None = None):
        self.status = status
        if body is None:
            body = b"" if payload is None else (
                json.dumps(payload, sort_keys=True) + "\n").encode()
        self.body = body
        self.headers = headers or {}

    def encode(self) -> bytes:
        phrase = _STATUS_PHRASES.get(self.status, "Unknown")
        lines = [f"HTTP/1.1 {self.status} {phrase}"]
        headers = {
            "Content-Type": "application/json; charset=utf-8",
            "Content-Length": str(len(self.body)),
            "Connection": "close",
            **self.headers,
        }
        if self.status == 304:
            # A 304 carries no body (and therefore no length).
            headers.pop("Content-Length", None)
            headers.pop("Content-Type", None)
            self.body = b""
        lines.extend(f"{name}: {value}"
                     for name, value in headers.items())
        head = ("\r\n".join(lines) + "\r\n\r\n").encode()
        return head + self.body


class ArtifactService:
    """Request handling + metrics; transport-independent core.

    Parameters
    ----------
    cache:
        The content-addressed artefact cache answering queries.
    queue:
        Optional work queue for enqueue-on-miss (202 + poll).
    compute_on_miss:
        Compute missing artefacts inline (wins over ``queue`` — the
        queue is then only used for depth metrics).
    base:
        ``FlowConfig`` kwargs applied under every request's overrides
        (the service-side campaign ``base``).
    max_connections:
        Concurrent-connection cap; connections beyond it are **shed**
        with ``503`` + ``Retry-After`` *before* their request is read,
        so an overloaded server stays responsive instead of queueing
        unboundedly (``None`` = uncapped).
    request_timeout_s:
        Per-request handling budget; a request not answered within it
        gets ``504`` (``None`` = unbounded).
    """

    def __init__(self, cache: ResultCache, *,
                 queue: WorkQueue | None = None,
                 compute_on_miss: bool = False,
                 base: dict[str, Any] | None = None,
                 max_connections: int | None = None,
                 request_timeout_s: float | None = None):
        if max_connections is not None and max_connections < 1:
            raise ServiceError("max_connections must be >= 1")
        if request_timeout_s is not None and request_timeout_s <= 0:
            raise ServiceError("request_timeout_s must be > 0")
        self.cache = cache
        self.queue = queue
        self.compute_on_miss = compute_on_miss
        self.base = dict(base or {})
        self.max_connections = max_connections
        self.request_timeout_s = request_timeout_s
        self._active = 0
        self.metrics = ServiceMetrics()
        self._code_fp = package_fingerprint()
        self._fingerprints: dict[tuple[str, int], str] = {}
        self._compute_locks: dict[str, asyncio.Lock] = {}

    # ------------------------------------------------------------------ #
    # request entry points
    # ------------------------------------------------------------------ #

    async def handle_connection(self, reader: asyncio.StreamReader,
                                writer: asyncio.StreamWriter) -> None:
        """Serve one request on one connection, then close it.

        Overload and fault behaviour: at the ``max_connections`` cap
        the connection is shed (``503`` + ``Retry-After``) without
        reading the request; a request exceeding
        ``request_timeout_s`` is answered ``504``; a fired
        ``service.reset`` chaos draw drops the connection with no
        response at all (clients must survive network blips).
        """
        started = time.monotonic()
        if chaos.fires("service.reset"):
            await self._close(writer)
            return
        if self.max_connections is not None \
                and self._active >= self.max_connections:
            self.metrics.shed += 1
            response = _Response(
                503, {"error": "server at connection capacity"},
                headers={"Retry-After": "1"})
            await self._write(writer, response)
            self.metrics.observe((time.monotonic() - started) * 1000.0)
            return
        self._active += 1
        try:
            slow_s = chaos.delay("service.slow")
            if slow_s:
                await asyncio.sleep(slow_s)
            try:
                if self.request_timeout_s is not None:
                    response = await asyncio.wait_for(
                        self._handle(reader), self.request_timeout_s)
                else:
                    response = await self._handle(reader)
            except (asyncio.TimeoutError, TimeoutError):
                self.metrics.timeouts += 1
                response = _Response(504, {
                    "error": f"request exceeded the "
                             f"{self.request_timeout_s}s budget"})
            except Exception as exc:  # noqa: BLE001 - must survive
                self.metrics.errors += 1
                response = _Response(
                    500, {"error": f"{type(exc).__name__}: {exc}"})
            await self._write(writer, response)
        finally:
            self._active -= 1
            self.metrics.observe((time.monotonic() - started) * 1000.0)

    async def _write(self, writer: asyncio.StreamWriter,
                     response: _Response) -> None:
        """Write one response and close (client-gone tolerant)."""
        try:
            writer.write(response.encode())
            await writer.drain()
        except (ConnectionError, OSError):  # pragma: no cover - gone
            pass
        await self._close(writer)

    @staticmethod
    async def _close(writer: asyncio.StreamWriter) -> None:
        try:
            writer.close()
            await writer.wait_closed()
        except (ConnectionError, OSError):  # pragma: no cover
            pass

    async def _handle(self, reader: asyncio.StreamReader) -> _Response:
        try:
            raw = await reader.readuntil(b"\r\n\r\n")
        except (asyncio.IncompleteReadError, asyncio.LimitOverrunError):
            return _Response(400, {"error": "malformed request"})
        if len(raw) > _MAX_REQUEST_BYTES:
            return _Response(400, {"error": "request too large"})
        request_line, *header_lines = raw.decode(
            "latin-1").split("\r\n")
        parts = request_line.split()
        if len(parts) != 3:
            return _Response(400, {"error": "malformed request line"})
        method, target, _version = parts
        if method != "GET":
            return _Response(405, {"error": "GET only"},
                             headers={"Allow": "GET"})
        headers = {}
        for line in header_lines:
            if ":" in line:
                name, _, value = line.partition(":")
                headers[name.strip().lower()] = value.strip()
        return await self.dispatch(target, headers)

    async def dispatch(self, target: str,
                       headers: dict[str, str] | None = None
                       ) -> _Response:
        """Route one request target; the testable core.

        Each request is recorded as a ``service.request`` trace event
        (asyncio handlers interleave on one thread, so the timing is
        measured here and recorded stack-free via
        :func:`repro.obs.trace.record_event`).
        """
        started = time.monotonic()
        response = await self._dispatch(target, headers)
        record_event("service.request",
                     time.monotonic() - started,
                     target=target, status=response.status)
        return response

    async def _dispatch(self, target: str,
                        headers: dict[str, str] | None = None
                        ) -> _Response:
        headers = headers or {}
        parsed = urllib.parse.urlsplit(target)
        path = urllib.parse.unquote(parsed.path).rstrip("/") or "/"
        query = urllib.parse.parse_qs(parsed.query)
        etag_in = headers.get("if-none-match")

        if path == "/healthz":
            return await self._healthz()
        if path == "/metrics":
            return self._metrics_response(query, headers)

        segments = [s for s in path.split("/") if s]
        try:
            if segments and segments[0] in ("table1", "flow"):
                if len(segments) != 2:
                    return _Response(
                        400, {"error": f"/{segments[0]}/<circuit>"})
                return await self._artefact_query(
                    segments[0], segments[1], query, etag_in)
            if path == "/figure2":
                return await self._artefact_query(
                    "figure2", "figure2", query, etag_in)
            if segments and segments[0] == "artifact":
                if len(segments) != 2:
                    return _Response(400,
                                     {"error": "/artifact/<cache-key>"})
                return self._poll(segments[1], etag_in)
        except ConfigError as exc:
            return _Response(400, {"error": str(exc)})
        except (ReproError, LookupError) as exc:
            # LookupError: the circuit loader's "unknown circuit".
            return _Response(404, {"error": str(exc)})
        return _Response(404, {"error": f"unknown endpoint {path!r}"})

    # ------------------------------------------------------------------ #
    # endpoint implementations
    # ------------------------------------------------------------------ #

    async def _healthz(self) -> _Response:
        """Active health: probe the stores the service depends on.

        A health endpoint that always says ok is a liveness bit, not a
        health check: this one round-trips a probe file through the
        cache root (and the queue's ``pending/`` when one is
        attached).  Any failed probe degrades the service to ``503``,
        so a load balancer stops routing to a replica whose volume
        went read-only or vanished.
        """
        checks = await asyncio.to_thread(self._probe_stores)
        degraded = any(state != "ok" for state in checks.values())
        return _Response(
            503 if degraded else 200,
            {"status": "degraded" if degraded else "ok",
             "checks": checks},
            headers={"Retry-After": "1"} if degraded else None)

    def _probe_stores(self) -> dict[str, str]:
        """Write/read/delete one probe file per dependent store."""
        targets = {"cache": self.cache.root}
        if self.queue is not None:
            targets["queue"] = self.queue.root / "pending"
        checks: dict[str, str] = {}
        for name, root in targets.items():
            probe = root / f".healthz-probe-{os.getpid()}"
            try:
                root.mkdir(parents=True, exist_ok=True)
                probe.write_bytes(b"ok")
                data = probe.read_bytes()
                probe.unlink()
                if data != b"ok":
                    raise OSError("probe read-back mismatch")
                checks[name] = "ok"
            except OSError as exc:
                checks[name] = f"failed: {exc}"
        return checks

    def _metrics_response(self, query: dict[str, list[str]],
                          headers: dict[str, str]) -> _Response:
        """``/metrics``: JSON by default, Prometheus on request.

        ``?format=prometheus`` — or an ``Accept`` header asking for
        ``text/plain`` without an explicit format — selects the text
        exposition format; the JSON payload is unchanged either way.
        """
        fmt = (query.get("format", [""])[0] or "").lower()
        accept = headers.get("accept", "")
        if fmt == "prometheus" or (not fmt and "text/plain" in accept):
            body = self._render_prometheus().encode()
            return _Response(200, body=body, headers={
                "Content-Type":
                    "text/plain; version=0.0.4; charset=utf-8"})
        if fmt and fmt != "json":
            return _Response(400, {
                "error": f"unknown metrics format {fmt!r} "
                         f"(json or prometheus)"})
        payload = {
            "service": self.metrics.snapshot(),
            "cache": dataclasses.asdict(self.cache.stats),
        }
        if self.queue is not None:
            payload["queue"] = dataclasses.asdict(self.queue.depth())
        return _Response(200, payload)

    def _render_prometheus(self) -> str:
        """Mirror the service state into the process registry and
        render it (the registry also carries the cross-cutting cache
        and queue counters the rest of the stack increments)."""
        reg = get_registry()
        snapshot = self.metrics.snapshot()
        for field in ("requests", "hits", "misses", "not_modified",
                      "computed", "enqueued", "errors", "shed",
                      "timeouts"):
            reg.gauge(f"repro_service_{field}",
                      f"Service {field.replace('_', ' ')} "
                      f"since start.").set(snapshot[field])
        reg.gauge("repro_service_latency_avg_ms",
                  "Mean request latency in ms.").set(
            snapshot["latency_avg_ms"])
        reg.gauge("repro_service_latency_max_ms",
                  "Max request latency in ms.").set(
            snapshot["latency_max_ms"])
        for field, value in dataclasses.asdict(
                self.cache.stats).items():
            reg.gauge(f"repro_service_cache_{field}",
                      f"Service-side result-cache {field}.").set(value)
        if self.queue is not None:
            depth = dataclasses.asdict(self.queue.depth())
            for state, count in depth.items():
                reg.gauge("repro_queue_depth",
                          "Queue entries per state.",
                          labels={"state": state}).set(count)
        return reg.render_prometheus()

    def _request_job(self, endpoint: str, circuit: str,
                     query: dict[str, list[str]]
                     ) -> tuple[CampaignJob, str]:
        """Build the (job, kind) a request addresses."""
        try:
            seed = int(query.get("seed", ["1"])[0])
        except ValueError:
            raise ConfigError("seed must be an integer") from None
        overrides: dict[str, Any] = {}
        if "overrides" in query:
            try:
                overrides = json.loads(query["overrides"][0])
            except ValueError:
                raise ConfigError(
                    "overrides must be a JSON object") from None
            if not isinstance(overrides, dict):
                raise ConfigError("overrides must be a JSON object")
        if "seed" in overrides:
            raise ConfigError(
                "pass the seed as the 'seed' query parameter, not in "
                "overrides")
        if endpoint == "figure2":
            if overrides:
                raise ConfigError(
                    "figure2 artefacts take no overrides (they depend "
                    "only on the cell library)")
            job = CampaignJob(job_id="figure2", circuit="figure2",
                              seed=1, circuit_seed=1,
                              config_kwargs=dict(self.base))
            return job, FIGURE2_ARTEFACT_KIND
        job = CampaignJob(
            job_id=f"{circuit}/seed{seed}",
            circuit=circuit,
            seed=seed,
            circuit_seed=seed or 1,
            config_kwargs={**self.base, **overrides},
        )
        return job, FLOW_ARTEFACT_KIND

    async def _artefact_query(self, endpoint: str, circuit: str,
                              query: dict[str, list[str]],
                              etag_in: str | None) -> _Response:
        job, kind = self._request_job(endpoint, circuit, query)
        # Key derivation loads/fingerprints the circuit on a cold
        # (circuit, seed): keep the event loop free.
        _config_hash, key = await asyncio.to_thread(
            job_identity, job, kind, cache=self.cache,
            code_fingerprint=self._code_fp,
            fingerprints=self._fingerprints)
        artefact = self.cache.get(key)
        if artefact is not None:
            self.metrics.hits += 1
            return self._artefact_response(endpoint, key, artefact,
                                           etag_in)
        self.metrics.misses += 1
        if self.compute_on_miss:
            artefact = await self._compute(job, kind, key)
            return self._artefact_response(endpoint, key, artefact,
                                           etag_in)
        if self.queue is not None:
            _name, enqueued = await asyncio.to_thread(
                self.queue.submit, job, kind)
            if enqueued:
                self.metrics.enqueued += 1
            return _Response(202, {
                "status": "pending",
                "key": key,
                "poll": f"/artifact/{key}",
                "enqueued": enqueued,
            }, headers={"Location": f"/artifact/{key}",
                        "Retry-After": "1"})
        return _Response(404, {
            "error": f"artefact not cached: {job.job_id}",
            "key": key,
        })

    async def _compute(self, job: CampaignJob, kind: str,
                       key: str) -> dict[str, Any]:
        """Compute one artefact inline (per-key single flight)."""
        lock = self._compute_locks.setdefault(key, asyncio.Lock())
        async with lock:
            artefact = self.cache.get(key)
            if artefact is not None:
                return artefact  # someone else computed it meanwhile
            artefact = await asyncio.to_thread(execute_job, job, kind)
            artefact.pop("_phases", None)  # keep artefacts bit-stable
            self.cache.put(key, artefact, meta={
                "job_id": job.job_id,
                "circuit": job.circuit,
                "code": self._code_fp,
                "via": "serve:compute-on-miss",
            })
            self.metrics.computed += 1
            return artefact

    def _poll(self, key: str, etag_in: str | None) -> _Response:
        artefact = self.cache.get(key)
        if artefact is not None:
            self.metrics.hits += 1
            return self._artefact_response("artifact", key, artefact,
                                           etag_in)
        self.metrics.misses += 1
        if self.queue is not None and self.queue.depth().outstanding:
            return _Response(202, {"status": "pending",
                                   "poll": f"/artifact/{key}"},
                             headers={"Retry-After": "1"})
        return _Response(404, {"error": "unknown artifact key",
                               "key": key})

    def _artefact_response(self, endpoint: str, key: str,
                           artefact: dict[str, Any],
                           etag_in: str | None) -> _Response:
        if endpoint == "table1":
            payload: dict[str, Any] = {
                "circuit": artefact.get("circuit"),
                "seed": artefact.get("seed"),
                "row": artefact.get("row"),
                "key": key,
            }
        else:
            payload = artefact
        body = (json.dumps(payload, sort_keys=True) + "\n").encode()
        etag = content_etag(body)
        if etag_in is not None and etag_in.strip() in (etag, "*"):
            self.metrics.not_modified += 1
            return _Response(304, headers={"ETag": etag})
        return _Response(200, body=body, headers={"ETag": etag})


# ---------------------------------------------------------------------- #
# transports
# ---------------------------------------------------------------------- #


async def start_service(service: ArtifactService, host: str,
                        port: int) -> asyncio.base_events.Server:
    """Start the asyncio server (caller owns the event loop)."""
    return await asyncio.start_server(
        service.handle_connection, host, port,
        limit=_MAX_REQUEST_BYTES)


def run_server(service: ArtifactService, host: str = "127.0.0.1",
               port: int = 8350, *,
               ready: threading.Event | None = None) -> None:
    """Blocking server loop (the ``repro serve`` CLI entry point)."""

    async def _main() -> None:
        server = await start_service(service, host, port)
        addr = ", ".join(
            f"{sock.getsockname()[0]}:{sock.getsockname()[1]}"
            for sock in server.sockets)
        print(f"repro serve: listening on {addr} "
              f"(cache {service.cache.root})", flush=True)
        if ready is not None:
            ready.set()
        async with server:
            await server.serve_forever()

    try:
        asyncio.run(_main())
    except KeyboardInterrupt:  # pragma: no cover - interactive stop
        pass


class ServiceServer:
    """A served :class:`ArtifactService` on a background thread.

    Test/embedding helper: binds (port ``0`` = ephemeral), exposes the
    bound port, and shuts the loop down cleanly::

        server = ServiceServer(service)
        port = server.start()
        ... http.client against 127.0.0.1:port ...
        server.stop()
    """

    def __init__(self, service: ArtifactService,
                 host: str = "127.0.0.1", port: int = 0):
        self.service = service
        self.host = host
        self.port = port
        self._loop: asyncio.AbstractEventLoop | None = None
        self._server: asyncio.base_events.Server | None = None
        self._thread: threading.Thread | None = None
        self._started = threading.Event()
        self._error: BaseException | None = None

    def _run(self) -> None:
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)
        self._loop = loop
        try:
            self._server = loop.run_until_complete(
                start_service(self.service, self.host, self.port))
            self.port = self._server.sockets[0].getsockname()[1]
        except BaseException as exc:  # pragma: no cover - bind failure
            self._error = exc
            self._started.set()
            loop.close()
            return
        self._started.set()
        try:
            loop.run_forever()
        finally:
            self._server.close()
            loop.run_until_complete(self._server.wait_closed())
            loop.close()

    def start(self, timeout: float = 10.0) -> int:
        """Start serving; returns the bound port."""
        self._thread = threading.Thread(target=self._run, daemon=True)
        self._thread.start()
        if not self._started.wait(timeout):  # pragma: no cover
            raise ServiceError("server failed to start in time")
        if self._error is not None:
            raise ServiceError(
                f"server failed to start: {self._error}")
        return self.port

    def stop(self, timeout: float = 10.0) -> None:
        if self._loop is not None and self._loop.is_running():
            self._loop.call_soon_threadsafe(self._loop.stop)
        if self._thread is not None:
            self._thread.join(timeout)

    def __enter__(self) -> "ServiceServer":
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()
