"""Content-addressed on-disk cache for campaign artefacts.

Artefacts (JSON-serializable dicts, e.g. the flow artefact a campaign
job produces) are stored under a SHA-256 key derived from everything
the result can depend on:

* the **circuit fingerprint** (:meth:`repro.netlist.circuit.Circuit.
  fingerprint` — netlist content, superseding the in-process
  ``Circuit.version`` counter for cross-process keys);
* the canonical **config hash**
  (:meth:`repro.core.config.FlowConfig.config_hash` — runtime-only
  engine fields excluded, so switching backends never misses);
* the **code fingerprint** (:func:`repro.utils.hashing.
  package_fingerprint` — any edit to the ``repro`` sources invalidates
  every prior artefact);
* an artefact ``kind`` tag, versioned so schema changes never read
  stale layouts.

Layout: ``<root>/<key[:2]>/<key>.json`` (two-level fan-out keeps
directory listings fast on large sweeps).  Writes are atomic
(temp file + ``os.replace``) and verified: each entry carries a
``digest`` of its artefact, the freshly written temp file is read
back before the replace (a torn write is caught *before* it can
shadow the key), and transient write failures are retried through
:func:`repro.chaos.retry_call`.  A corrupt entry found on read — bad
JSON, missing keys, digest mismatch — degrades to a miss and is
**quarantined**: renamed to ``<key>.corrupt`` (kept for forensics,
invisible to :meth:`~ResultCache.entries`/GC) so subsequent lookups
recompute instead of re-parsing the same wreck forever.
"""

from __future__ import annotations

import dataclasses
import json
import os
import tempfile
import time
from pathlib import Path
from typing import Any

import repro.chaos as chaos
from repro.chaos import retry_call
from repro.obs.metrics import get_registry
from repro.obs.trace import span
from repro.utils.hashing import package_fingerprint, stable_digest

__all__ = ["ResultCache", "CacheStats"]


def _cache_counter(outcome: str):
    return get_registry().counter(
        "repro_cache_ops_total",
        "Result-cache operations by outcome "
        "(hit/miss/store/corrupt).",
        labels={"outcome": outcome})


@dataclasses.dataclass
class CacheStats:
    """Hit/miss/store counters for one :class:`ResultCache` instance."""

    hits: int = 0
    misses: int = 0
    stores: int = 0
    corrupt: int = 0


class ResultCache:
    """Content-addressed JSON artefact store rooted at ``root``."""

    def __init__(self, root: str | Path):
        self.root = Path(root)
        self.stats = CacheStats()

    # ------------------------------------------------------------------ #
    # keys and paths
    # ------------------------------------------------------------------ #

    def key(self, kind: str, circuit_fingerprint: str, config_hash: str,
            code_fingerprint: str | None = None) -> str:
        """The content-addressed key for one (kind, inputs) tuple."""
        return stable_digest({
            "kind": kind,
            "circuit": circuit_fingerprint,
            "config": config_hash,
            "code": code_fingerprint if code_fingerprint is not None
            else package_fingerprint(),
        })

    def path(self, key: str) -> Path:
        """On-disk location of ``key``'s entry."""
        return self.root / key[:2] / f"{key}.json"

    def __contains__(self, key: str) -> bool:
        return self.path(key).is_file()

    # ------------------------------------------------------------------ #
    # storage
    # ------------------------------------------------------------------ #

    def get(self, key: str) -> dict[str, Any] | None:
        """The artefact stored under ``key``, or ``None`` on a miss.

        Corrupt entries count as misses — a cache must never be able
        to wedge a campaign — but are additionally **quarantined**
        (renamed to ``<key>.corrupt``) so the next lookup goes
        straight to recomputation instead of re-parsing the wreck.
        An unreadable file (gone, permissions) is a plain miss and is
        left alone.
        """
        path = self.path(key)
        with span("cache.get", key=key[:12]) as sp:
            try:
                data = path.read_bytes()
            except OSError:
                self.stats.misses += 1
                _cache_counter("miss").inc()
                sp.attrs["outcome"] = "miss"
                return None
            data = chaos.mangle("cache.read", data)
            try:
                entry = json.loads(data)
                artefact = entry["artefact"]
                digest = entry.get("digest")
                # Entries written before the digest field are trusted
                # as-is; a present digest must match the artefact.
                if digest is not None \
                        and stable_digest(artefact) != digest:
                    raise ValueError("artefact digest mismatch")
            except (ValueError, KeyError, TypeError):
                self._quarantine(path)
                self.stats.misses += 1
                self.stats.corrupt += 1
                _cache_counter("corrupt").inc()
                sp.attrs["outcome"] = "corrupt"
                return None
            self.stats.hits += 1
            _cache_counter("hit").inc()
            sp.attrs["outcome"] = "hit"
            return artefact

    def _quarantine(self, path: Path) -> None:
        """Move a corrupt entry out of the key's way (best effort)."""
        try:
            os.replace(path, path.with_suffix(".corrupt"))
        except OSError:  # pragma: no cover - raced removal
            pass

    def put(self, key: str, artefact: dict[str, Any],
            meta: dict[str, Any] | None = None) -> Path:
        """Atomically store ``artefact`` under ``key`` (verified).

        ``meta`` (e.g. the human-readable key ingredients) is kept
        alongside for debuggability but never read back on the hot
        path.  The entry carries a content ``digest`` of the artefact;
        the temp file is read back and compared before the atomic
        replace, so a torn or corrupted write never shadows the key —
        it is retried (:func:`repro.chaos.retry_call`) instead.
        """
        path = self.path(key)
        with span("cache.put", key=key[:12]):
            path.parent.mkdir(parents=True, exist_ok=True)
            entry = {"key": key, "meta": meta or {},
                     "artefact": artefact,
                     "digest": stable_digest(artefact)}
            data = json.dumps(entry, sort_keys=True).encode()
            retry_call(lambda: self._write_verified(path, data),
                       site="cache.write")
        self.stats.stores += 1
        _cache_counter("store").inc()
        return path

    @staticmethod
    def _write_verified(path: Path, data: bytes) -> None:
        """One write attempt: temp file, read-back check, replace."""
        fd, tmp_name = tempfile.mkstemp(
            dir=path.parent, prefix=".tmp-", suffix=".json")
        try:
            with os.fdopen(fd, "wb") as handle:
                handle.write(chaos.mangle("cache.write", data))
            if Path(tmp_name).read_bytes() != data:
                raise OSError("torn cache write detected on read-back")
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:  # pragma: no cover - replaced/gone
                pass
            raise

    def gc(self, max_bytes: int) -> tuple[int, int]:
        """Evict LRU-by-mtime entries until the cache fits ``max_bytes``.

        Only well-formed key files count and get evicted — manifests
        (top-level) and stray temp files are never touched.  The mtime
        order makes this an LRU on *write* time: campaigns re-``put``
        nothing on hits, so untouched artefacts age out first while a
        long-lived ``.repro-cache/`` stops growing without bound.

        Returns ``(entries evicted, bytes freed)``.  A vanished file
        (concurrent eviction) is skipped, never an error.
        """
        if max_bytes < 0:
            raise ValueError("max_bytes must be >= 0")
        entries: list[tuple[float, str, int]] = []
        total = 0
        for key in self.entries():
            path = self.path(key)
            try:
                stat = path.stat()
            except OSError:  # pragma: no cover - raced eviction
                continue
            entries.append((stat.st_mtime, key, stat.st_size))
            total += stat.st_size
        entries.sort()
        evicted = 0
        freed = 0
        for _mtime, key, size in entries:
            if total - freed <= max_bytes:
                break
            try:
                self.path(key).unlink()
            except OSError:  # pragma: no cover - raced eviction
                continue
            evicted += 1
            freed += size
        return evicted, freed

    def gc_older_than(self, max_age_s: float,
                      now: float | None = None) -> tuple[int, int]:
        """Evict every entry whose mtime is older than ``max_age_s``.

        The age-based companion to :meth:`gc`: instead of a size
        budget, drop artefacts not written for ``max_age_s`` seconds
        (``repro campaign gc --max-age-days``).  Same guarantees —
        only well-formed key files are touched, vanished files are
        skipped.  Returns ``(entries evicted, bytes freed)``.
        """
        if max_age_s < 0:
            raise ValueError("max_age_s must be >= 0")
        cutoff = (time.time() if now is None else now) - max_age_s
        evicted = 0
        freed = 0
        for key in self.entries():
            path = self.path(key)
            try:
                stat = path.stat()
            except OSError:  # pragma: no cover - raced eviction
                continue
            if stat.st_mtime >= cutoff:
                continue
            try:
                path.unlink()
            except OSError:  # pragma: no cover - raced eviction
                continue
            evicted += 1
            freed += stat.st_size
        return evicted, freed

    def entries(self) -> list[str]:
        """All stored keys (sorted; directory scan, test/CLI use only).

        Only well-formed key files count — a ``.tmp-*`` file left by a
        kill between ``mkstemp`` and ``os.replace`` is not an entry
        (``pathlib`` globs match dotfiles).
        """
        if not self.root.is_dir():
            return []
        return sorted(
            p.stem for p in self.root.glob("*/*.json")
            if len(p.stem) == 64 and p.parent.name == p.stem[:2]
            and all(c in "0123456789abcdef" for c in p.stem))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<ResultCache root={str(self.root)!r} {self.stats}>"
