"""Filesystem-backed multi-host work queue for campaign jobs.

The campaign layer already had everything a distributed service needs
except the transport: a content-addressed artefact cache (any worker's
result lands under the same key — :mod:`repro.campaign.cache`), a
per-job manifest and deterministic spec expansion.  This module adds
the transport: a work queue that is nothing but a directory tree, so
any number of ``repro worker`` processes — on one host or on many
machines sharing the directory (NFS, a container volume) — can drain
one campaign spec with no coordinator process.

Layout (all JSON, all writes atomic via temp file + ``os.replace``)::

    <root>/queue.json          queue metadata: spec, kind, lease TTL
    <root>/pending/NNNNN-<job>.json   one file per unclaimed job
    <root>/claimed/NNNNN-<job>.json   leased jobs (mtime = heartbeat)
    <root>/done/NNNNN-<job>.json      completed JobRecords
    <root>/failed/NNNNN-<job>.json    jobs whose execution raised

Leases are **claim-by-rename**: a worker claims a job by renaming its
file from ``pending/`` into ``claimed/`` — ``os.rename`` is atomic on
POSIX, so exactly one of any number of racing workers wins (the losers
get ``FileNotFoundError`` and move on).  The claimed file's mtime is
the lease heartbeat: the owner touches it (``os.utime``) periodically;
any worker finding a claimed file whose heartbeat is older than the
queue's ``lease_ttl_s`` renames it back into ``pending/`` — so a
SIGKILLed worker's job is re-leased and completed by whoever claims it
next.  A worker whose heartbeat ``utime`` fails with ``ENOENT`` knows
its lease was revoked.

Duplicate execution is possible in one narrow race (a lease expiring
while its owner is still alive, e.g. under extreme clock skew between
hosts) and is **benign by construction**: artefacts are
content-addressed, both executions produce bit-identical JSON, and the
completion markers are idempotent renames/overwrites.  Correctness
never depends on the lease — the lease only bounds wasted work.

Results land in the same :class:`~repro.campaign.cache.ResultCache`
and :class:`~repro.campaign.manifest.Manifest` records as an
in-process ``repro campaign`` run, bit-identical to a serial ``--jobs
1`` execution; the manifest is assembled from the ``done/`` records
(:meth:`WorkQueue.write_manifest`), so concurrent workers never
rewrite one shared manifest file.
"""

from __future__ import annotations

import dataclasses
import json
import os
import re
import socket
import tempfile
import threading
import time
import traceback
from pathlib import Path
from typing import Any, Callable

import repro.chaos as chaos
from repro.campaign.cache import ResultCache
from repro.campaign.manifest import (
    CampaignJob,
    CampaignSpec,
    JobRecord,
    Manifest,
)
from repro.campaign.runner import (
    FIGURE2_ARTEFACT_KIND,
    FLOW_ARTEFACT_KIND,
    execute_job,
    job_identity,
)
from repro.chaos import RetryPolicy, retry_call
from repro.errors import QueueError
from repro.obs.metrics import get_registry
from repro.obs.trace import flush as trace_flush
from repro.obs.trace import propagation_context, span, using_context
from repro.utils.hashing import package_fingerprint
from repro.utils.timing import Stopwatch

__all__ = [
    "ClaimedJob",
    "QueueDepth",
    "WorkerStats",
    "WorkQueue",
    "run_worker",
]

#: Default lease time-to-live: a claimed job whose heartbeat is older
#: than this is considered abandoned and re-queued.
DEFAULT_LEASE_TTL_S = 60.0

#: Default execution-failure budget per job: a job whose execution
#: raised this many times is quarantined in ``failed/`` (poisoned)
#: instead of being re-queued again.
DEFAULT_MAX_ATTEMPTS = 3

_STATES = ("pending", "claimed", "done", "failed")


def _requeued_counter():
    """Get-or-create survives registry resets between tests."""
    return get_registry().counter(
        "repro_queue_requeued_total",
        "Claimed jobs whose expired lease was returned to pending.")


def _quarantined_counter():
    return get_registry().counter(
        "repro_queue_quarantined_total",
        "Jobs parked in failed/ after exhausting their attempt "
        "budget.")


def _job_retry_counter():
    return get_registry().counter(
        "repro_retries_total",
        "Transient failures retried, by site.",
        labels={"site": "queue.job"})


def _atomic_write_json(path: Path, payload: dict[str, Any]) -> None:
    """Write ``payload`` atomically, retrying transient I/O failures."""
    path.parent.mkdir(parents=True, exist_ok=True)
    retry_call(lambda: _write_json_once(path, payload),
               site="queue.write")


def _write_json_once(path: Path, payload: dict[str, Any]) -> None:
    chaos.point("queue.write")
    fd, tmp_name = tempfile.mkstemp(
        dir=path.parent, prefix=".tmp-", suffix=".json")
    try:
        with os.fdopen(fd, "w") as handle:
            json.dump(payload, handle, sort_keys=True)
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:  # pragma: no cover - already replaced/gone
            pass
        raise


def _read_json(path: Path) -> dict[str, Any] | None:
    try:
        with path.open() as handle:
            payload = json.load(handle)
    except (OSError, ValueError):
        return None
    return payload if isinstance(payload, dict) else None


def _job_file_name(index: int, job_id: str) -> str:
    """Deterministic, filesystem-safe file name for one job."""
    slug = re.sub(r"[^A-Za-z0-9_.-]+", "-", job_id)
    return f"{index:05d}-{slug}.json"


@dataclasses.dataclass(frozen=True)
class ClaimedJob:
    """One leased job: the payload plus where its lease file lives."""

    name: str
    job: CampaignJob
    kind: str
    path: Path
    #: Submitter's trace context (``propagation_context`` shape) —
    #: the executing worker adopts it so its spans join that trace.
    trace: dict[str, Any] | None = None
    #: Failed executions so far (rides in the job payload across
    #: re-queues; drives the poison-job quarantine budget).
    attempts: int = 0


@dataclasses.dataclass(frozen=True)
class QueueDepth:
    """Entry counts per queue state."""

    pending: int = 0
    claimed: int = 0
    done: int = 0
    failed: int = 0

    @property
    def outstanding(self) -> int:
        """Jobs not yet terminally settled."""
        return self.pending + self.claimed

    @property
    def total(self) -> int:
        return self.pending + self.claimed + self.done + self.failed


@dataclasses.dataclass
class WorkerStats:
    """What one :func:`run_worker` drain accomplished."""

    worker_id: str = ""
    executed: int = 0
    cached: int = 0
    failed: int = 0
    requeued: int = 0
    #: Jobs re-queued for another attempt after their execution raised
    #: (distinct from ``failed``, which counts quarantines).
    retried: int = 0
    wall_s: float = 0.0


class WorkQueue:
    """A campaign work queue rooted at a (possibly shared) directory."""

    VERSION = 1

    def __init__(self, root: str | Path, *,
                 lease_ttl_s: float | None = None):
        self.root = Path(root)
        self._meta: dict[str, Any] | None = None
        self._lease_ttl_override = lease_ttl_s
        if lease_ttl_s is not None and lease_ttl_s <= 0:
            raise QueueError("lease_ttl_s must be > 0")

    # ------------------------------------------------------------------ #
    # metadata
    # ------------------------------------------------------------------ #

    def _dir(self, state: str) -> Path:
        return self.root / state

    @property
    def meta_path(self) -> Path:
        return self.root / "queue.json"

    def _metadata(self) -> dict[str, Any]:
        if self._meta is None:
            payload = _read_json(self.meta_path)
            if payload is None or payload.get("version") != self.VERSION:
                raise QueueError(
                    f"{self.meta_path} is missing or not a v{self.VERSION} "
                    f"work queue (create one with 'repro campaign "
                    f"--enqueue DIR' or WorkQueue.enqueue)")
            self._meta = payload
        return self._meta

    @property
    def lease_ttl_s(self) -> float:
        """Effective lease TTL (constructor override > queue.json)."""
        if self._lease_ttl_override is not None:
            return self._lease_ttl_override
        return float(self._metadata().get(
            "lease_ttl_s", DEFAULT_LEASE_TTL_S))

    @property
    def max_attempts(self) -> int:
        """Per-job execution-failure budget before quarantine
        (``queue.json``; queues created before the field use the
        default)."""
        return int(self._metadata().get(
            "max_attempts", DEFAULT_MAX_ATTEMPTS) or
            DEFAULT_MAX_ATTEMPTS)

    def spec(self) -> CampaignSpec:
        """The campaign spec this queue was created from."""
        return CampaignSpec.from_dict(self._metadata()["spec"])

    def kind(self) -> str:
        """Artefact kind every job in this queue computes."""
        return self._metadata()["kind"]

    # ------------------------------------------------------------------ #
    # enqueue
    # ------------------------------------------------------------------ #

    @classmethod
    def create(cls, root: str | Path, *, name: str = "adhoc",
               lease_ttl_s: float = DEFAULT_LEASE_TTL_S) -> "WorkQueue":
        """Initialise an empty, spec-less queue (ad-hoc submits only).

        The artifact service uses this shape: jobs arrive one at a
        time via :meth:`submit` as cache misses come in, instead of
        from one up-front campaign spec.
        """
        if lease_ttl_s <= 0:
            raise QueueError("lease_ttl_s must be > 0")
        queue = cls(root)
        existing = _read_json(queue.meta_path)
        if existing is None:
            for state in _STATES:
                queue._dir(state).mkdir(parents=True, exist_ok=True)
            _atomic_write_json(queue.meta_path, {
                "version": cls.VERSION,
                "name": name,
                "kind": None,
                "spec": None,
                "spec_digest": None,
                "lease_ttl_s": lease_ttl_s,
                "max_attempts": DEFAULT_MAX_ATTEMPTS,
            })
        return queue

    def submit(self, job: CampaignJob,
               kind: str = FLOW_ARTEFACT_KIND) -> tuple[str, bool]:
        """Enqueue one ad-hoc job; returns ``(entry name, enqueued)``.

        The entry name is a digest of the job payload, so re-submitting
        an identical request (e.g. many clients polling the same cold
        artefact) deduplicates instead of queueing duplicate work;
        ``enqueued`` is ``False`` when the job was already in flight or
        settled.
        """
        self._metadata()  # fail fast on a missing queue
        payload = {"job": dataclasses.asdict(job), "kind": kind}
        from repro.utils.hashing import stable_digest
        # Name digested before the trace context is attached: the same
        # job submitted from different traces must still deduplicate.
        name = f"adhoc-{stable_digest(payload)[:20]}.json"
        with span("queue.submit", job=job.job_id) as sp:
            ctx = propagation_context()
            if ctx is not None:
                payload["trace"] = ctx
            for state in _STATES:
                if (self._dir(state) / name).exists():
                    sp.attrs["enqueued"] = False
                    return name, False
            _atomic_write_json(self._dir("pending") / name, payload)
            sp.attrs["enqueued"] = True
        return name, True

    def enqueue(self, spec: CampaignSpec, *,
                lease_ttl_s: float = DEFAULT_LEASE_TTL_S) -> int:
        """Expand ``spec`` into the queue; returns the jobs enqueued.

        One queue belongs to one spec: re-enqueueing the *same* spec is
        an idempotent top-up (jobs already pending, claimed, done or
        failed are skipped, so a partially drained queue is never
        duplicated); a different spec raises :class:`QueueError`.
        """
        if lease_ttl_s <= 0:
            raise QueueError("lease_ttl_s must be > 0")
        existing = _read_json(self.meta_path)
        if existing is not None:
            if existing.get("spec_digest") != spec.digest():
                raise QueueError(
                    f"queue {self.root} already holds campaign "
                    f"{existing.get('name', '?')!r} with a different "
                    f"spec; use a fresh directory per campaign")
        for state in _STATES:
            self._dir(state).mkdir(parents=True, exist_ok=True)
        kind = FIGURE2_ARTEFACT_KIND if spec.kind == "figure2" \
            else FLOW_ARTEFACT_KIND
        if existing is None:
            _atomic_write_json(self.meta_path, {
                "version": self.VERSION,
                "name": spec.name,
                "kind": kind,
                "spec": spec.to_dict(),
                "spec_digest": spec.digest(),
                "lease_ttl_s": lease_ttl_s,
                "max_attempts": DEFAULT_MAX_ATTEMPTS,
            })
            self._meta = None
        present = {
            name for state in _STATES
            for name in self._entry_names(state)
        }
        enqueued = 0
        with span("queue.enqueue", campaign=spec.name) as sp:
            ctx = propagation_context()
            for index, job in enumerate(spec.expand()):
                name = _job_file_name(index, job.job_id)
                if name in present:
                    continue
                payload = {
                    "job": dataclasses.asdict(job),
                    "kind": kind,
                }
                if ctx is not None:
                    payload["trace"] = ctx
                _atomic_write_json(self._dir("pending") / name, payload)
                enqueued += 1
            sp.attrs["jobs"] = enqueued
        return enqueued

    # ------------------------------------------------------------------ #
    # lease lifecycle
    # ------------------------------------------------------------------ #

    def _entry_names(self, state: str) -> list[str]:
        """Well-formed entry file names in one state dir, sorted."""
        directory = self._dir(state)
        if not directory.is_dir():
            return []
        return sorted(p.name for p in directory.iterdir()
                      if p.suffix == ".json"
                      and not p.name.startswith("."))

    def claim(self, worker_id: str) -> ClaimedJob | None:
        """Atomically claim the next pending job, or ``None``.

        Claim-by-rename: exactly one racing worker wins each job.  A
        pending entry that already has a ``done/`` marker (a re-queued
        copy of a job another worker finished meanwhile) is discarded
        instead of claimed.
        """
        for name in self._entry_names("pending"):
            pending_path = self._dir("pending") / name
            claimed_path = self._dir("claimed") / name
            if (self._dir("done") / name).exists():
                # Stale duplicate: the job was re-queued, then its
                # original owner finished after all.
                try:
                    pending_path.unlink()
                except OSError:  # pragma: no cover - raced cleanup
                    pass
                continue
            try:
                chaos.point("queue.rename")
                os.rename(pending_path, claimed_path)
            except OSError:
                continue  # another worker won this one (or chaos
                # struck); the job stays pending for the next pass
            # The rename preserved the (possibly old) pending mtime —
            # refresh it immediately so the fresh lease cannot look
            # expired to a concurrent scavenger.
            try:
                os.utime(claimed_path)
            except OSError:  # pragma: no cover - raced requeue
                continue
            payload = _read_json(claimed_path)
            if payload is None or "job" not in payload:
                # Corrupt entry: park it in failed/ so the queue drains.
                try:
                    os.rename(claimed_path,
                              self._dir("failed") / name)
                except OSError:  # pragma: no cover - raced
                    pass
                continue
            lease = dict(payload)
            lease["lease"] = {
                "worker": worker_id,
                "host": socket.gethostname(),
                "pid": os.getpid(),
                "claimed_at": time.time(),
            }
            with span("queue.claim", job=name):
                _atomic_write_json(claimed_path, lease)
                return ClaimedJob(
                    name=name,
                    job=CampaignJob(**payload["job"]),
                    kind=payload.get("kind", FLOW_ARTEFACT_KIND),
                    path=claimed_path,
                    trace=payload.get("trace"),
                    attempts=int(payload.get("attempts", 0) or 0),
                )
        return None

    #: Heartbeats retry transient utime failures but give up straight
    #: away on ``FileNotFoundError`` — a vanished lease file means the
    #: lease was revoked, not that the filesystem hiccuped.
    _HEARTBEAT_RETRY = RetryPolicy(attempts=4, base_s=0.005,
                                   cap_s=0.05,
                                   giveup_on=(FileNotFoundError,))

    def heartbeat(self, claim: ClaimedJob) -> bool:
        """Refresh ``claim``'s lease; ``False`` when it was revoked."""
        with span("queue.heartbeat", job=claim.name) as sp:
            try:
                retry_call(lambda: self._touch(claim),
                           site="queue.heartbeat",
                           policy=self._HEARTBEAT_RETRY)
            except OSError:
                sp.attrs["lost"] = True
                return False
            return True

    @staticmethod
    def _touch(claim: ClaimedJob) -> None:
        chaos.point("queue.heartbeat")
        os.utime(claim.path)

    def requeue_expired(self, now: float | None = None) -> int:
        """Re-queue claimed jobs whose heartbeat exceeded the TTL.

        Any worker may scavenge; the rename back into ``pending/`` is
        atomic, so concurrent scavengers re-queue each job once.
        Returns the number of jobs re-queued.
        """
        now = time.time() if now is None else now
        ttl = self.lease_ttl_s
        requeued = 0
        with span("queue.requeue") as sp:
            for name in self._entry_names("claimed"):
                claimed_path = self._dir("claimed") / name
                if (self._dir("done") / name).exists():
                    # Completed but its claimed file survived a crash
                    # between the done write and the claimed unlink.
                    try:
                        claimed_path.unlink()
                    except OSError:  # pragma: no cover - raced
                        pass
                    continue
                try:
                    age = now - claimed_path.stat().st_mtime
                except OSError:
                    continue  # completed or re-queued meanwhile
                if age <= ttl:
                    continue
                try:
                    chaos.point("queue.requeue")
                    os.rename(claimed_path, self._dir("pending") / name)
                except OSError:
                    # Raced scavenger, or chaos struck — the lease is
                    # still expired, so the next pass retries.
                    continue
                requeued += 1
            sp.attrs["requeued"] = requeued
        if requeued:
            _requeued_counter().inc(requeued)
        return requeued

    def complete(self, claim: ClaimedJob, record: JobRecord) -> None:
        """Mark ``claim`` done (idempotent; survives lost leases).

        The done marker is written first, then the lease file is
        removed — a crash in between leaves a state
        :meth:`requeue_expired` cleans up, never a lost result.
        """
        payload = record.to_dict()
        payload["completed_at"] = time.time()
        _atomic_write_json(self._dir("done") / claim.name, payload)
        try:
            claim.path.unlink()
        except OSError:
            pass  # lease was revoked/re-queued; the marker wins

    def release(self, claim: ClaimedJob, *, attempts: int) -> None:
        """Return ``claim`` to ``pending/`` for another attempt.

        ``attempts`` (the number of failed executions so far) rides in
        the job payload, so whichever worker claims the job next knows
        how much budget is left.
        """
        payload = _read_json(claim.path) or {
            "job": dataclasses.asdict(claim.job), "kind": claim.kind}
        payload.pop("lease", None)
        payload["attempts"] = attempts
        _atomic_write_json(self._dir("pending") / claim.name, payload)
        try:
            claim.path.unlink()
        except OSError:
            pass
        _job_retry_counter().inc()

    def fail(self, claim: ClaimedJob, error: str, *,
             traceback_text: str | None = None,
             attempts: int | None = None,
             worker_id: str | None = None) -> None:
        """Quarantine ``claim`` in ``failed/`` with a triage record.

        Besides the human-readable ``error``, the entry carries a
        machine-readable ``failure`` object — ``{error, traceback,
        attempts, worker_id}`` — so ``repro-power campaign
        retry-failed`` and humans can tell a poison job from an
        infrastructure casualty.
        """
        payload = _read_json(claim.path) or {
            "job": dataclasses.asdict(claim.job), "kind": claim.kind}
        payload.pop("lease", None)
        payload["error"] = error
        payload["failure"] = {
            "error": error,
            "traceback": traceback_text,
            "attempts": attempts,
            "worker_id": worker_id,
        }
        payload["failed_at"] = time.time()
        _atomic_write_json(self._dir("failed") / claim.name, payload)
        try:
            claim.path.unlink()
        except OSError:
            pass
        _quarantined_counter().inc()

    def retry_failed(self) -> int:
        """Move every quarantined job back to ``pending/`` with a
        fresh attempt budget; returns the number re-queued
        (``repro-power campaign retry-failed DIR``)."""
        moved = 0
        with span("queue.retry_failed") as sp:
            for name in self._entry_names("failed"):
                failed_path = self._dir("failed") / name
                payload = _read_json(failed_path)
                if payload is None or "job" not in payload:
                    continue  # corrupt entry: nothing to re-run
                if (self._dir("done") / name).exists():
                    # Finished after all (e.g. re-run via another
                    # queue entry); drop the stale quarantine.
                    try:
                        failed_path.unlink()
                    except OSError:  # pragma: no cover - raced
                        pass
                    continue
                for stale in ("error", "failure", "failed_at",
                              "attempts", "lease"):
                    payload.pop(stale, None)
                _atomic_write_json(self._dir("pending") / name, payload)
                try:
                    failed_path.unlink()
                except OSError:  # pragma: no cover - raced retry
                    pass
                moved += 1
            sp.attrs["requeued"] = moved
        return moved

    # ------------------------------------------------------------------ #
    # inspection
    # ------------------------------------------------------------------ #

    def depth(self) -> QueueDepth:
        """Current entry counts per state (one directory scan each)."""
        return QueueDepth(**{state: len(self._entry_names(state))
                             for state in _STATES})

    def records(self) -> list[JobRecord]:
        """JobRecords of all settled jobs, in deterministic job order.

        ``done/`` entries carry full records; ``failed/`` entries are
        reconstructed as failed records.  Together with the spec they
        re-create the manifest an in-process run would have written.
        """
        records: list[JobRecord] = []
        for name in self._entry_names("done"):
            payload = _read_json(self._dir("done") / name)
            if payload is None:
                continue
            payload.pop("completed_at", None)
            try:
                records.append(JobRecord.from_dict(payload))
            except TypeError:
                continue
        for name in self._entry_names("failed"):
            payload = _read_json(self._dir("failed") / name)
            if payload is None or "job" not in payload:
                continue
            job = payload["job"]
            records.append(JobRecord(
                job_id=job.get("job_id", name),
                circuit=job.get("circuit", "?"),
                seed=job.get("seed", 0),
                config_hash="",
                status="failed",
                error=payload.get("error"),
            ))
        return records

    def write_manifest(self, path: str | Path) -> Manifest:
        """Assemble the campaign manifest from the queue's records.

        Workers never rewrite a shared manifest concurrently — the
        ``done/`` records *are* the journal, and this deterministic
        assembly (sorted job ids, same shape as an in-process run's
        manifest) can be re-run at any time, by any host.
        """
        digest = self._metadata().get("spec_digest") or "adhoc"
        manifest = Manifest(path, digest)
        for record in self.records():
            manifest.record(record, save=False)
        manifest.save()
        return manifest


# ---------------------------------------------------------------------- #
# worker loop
# ---------------------------------------------------------------------- #


class _LeaseKeeper:
    """Background thread refreshing one claim's heartbeat."""

    def __init__(self, queue: WorkQueue, claim: ClaimedJob,
                 interval_s: float):
        self._queue = queue
        self._claim = claim
        self._interval_s = interval_s
        self._stop = threading.Event()
        self.lost = False
        self._thread = threading.Thread(target=self._run, daemon=True)

    def _run(self) -> None:
        while not self._stop.wait(self._interval_s):
            if not self._queue.heartbeat(self._claim):
                self.lost = True
                return

    def __enter__(self) -> "_LeaseKeeper":
        self._thread.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self._stop.set()
        self._thread.join(timeout=5.0)


def run_worker(queue_dir: str | Path, cache_dir: str | Path, *,
               worker_id: str | None = None,
               poll_s: float = 0.5,
               wait: bool = False,
               max_jobs: int | None = None,
               lease_ttl_s: float | None = None,
               max_attempts: int | None = None,
               verbose: bool = False,
               on_idle: Callable[[], None] | None = None,
               should_stop: Callable[[], bool] | None = None
               ) -> WorkerStats:
    """Drain ``queue_dir`` into ``cache_dir``; returns worker stats.

    The worker loop: re-queue expired leases, claim one job, consult
    the content-addressed cache (hits complete without executing),
    execute misses in-process with a heartbeat thread keeping the
    lease alive, checkpoint artefact + done record, repeat.  By
    default the worker exits once the queue has no outstanding jobs;
    ``wait=True`` keeps polling for new work instead (a long-lived
    worker behind ``repro serve``'s enqueue-on-miss).  ``max_jobs``
    bounds the number of jobs processed (tests, bounded drains).

    A job whose execution raises is **re-queued** with its attempt
    count until the budget (``max_attempts`` argument >
    ``queue.json`` > 3) is exhausted, then quarantined in
    ``failed/`` with the captured traceback — a poison job can never
    wedge the queue, and a transiently failed one heals without
    operator action.  ``should_stop`` is polled between jobs: when it
    turns true the worker finishes its current job and exits cleanly
    (the CLI wires SIGTERM to it).

    Any number of concurrent workers — across processes and hosts —
    produce a cache and manifest bit-identical to a serial
    ``repro campaign --jobs 1`` run (modulo wall-clock timings).
    """
    queue = WorkQueue(queue_dir, lease_ttl_s=lease_ttl_s)
    queue._metadata()  # fail fast on a missing/corrupt queue
    cache = ResultCache(cache_dir)
    stats = WorkerStats(worker_id=worker_id or (
        f"{socket.gethostname()}-{os.getpid()}"))
    # Decorrelate this worker's injection streams from its siblings
    # (deterministic per worker_id): co-located workers would otherwise
    # share every draw and die/fail in lockstep.
    chaos.rescope(stats.worker_id)
    watch = Stopwatch()
    code_fp = package_fingerprint()
    fingerprints: dict[tuple[str, int], str] = {}
    heartbeat_s = max(queue.lease_ttl_s / 3.0, 0.02)
    budget = max_attempts if max_attempts is not None \
        else queue.max_attempts
    if budget < 1:
        raise QueueError("max_attempts must be >= 1")

    processed = 0
    while max_jobs is None or processed < max_jobs:
        if should_stop is not None and should_stop():
            break
        stats.requeued += queue.requeue_expired()
        claim = queue.claim(stats.worker_id)
        if claim is None:
            if queue.depth().outstanding == 0 and not wait:
                break
            if on_idle is not None:
                on_idle()
            time.sleep(poll_s)
            continue
        processed += 1
        job_watch = Stopwatch()
        try:
            with using_context(claim.trace), \
                    span("worker.job", job=claim.job.job_id,
                         worker=stats.worker_id) as job_span:
                config_hash, key = job_identity(
                    claim.job, claim.kind, cache=cache,
                    code_fingerprint=code_fp, fingerprints=fingerprints)
                record = JobRecord(
                    job_id=claim.job.job_id, circuit=claim.job.circuit,
                    seed=claim.job.seed, config_hash=config_hash,
                    cache_key=key)
                artefact = cache.get(key) if key is not None else None
                if artefact is not None:
                    record.status = "done"
                    record.source = "cache"
                    stats.cached += 1
                else:
                    with _LeaseKeeper(queue, claim, heartbeat_s):
                        # A killed worker (here or in execute_job)
                        # stops heartbeating; the lease expires and
                        # another worker re-claims the job.
                        chaos.point("worker.kill")
                        artefact = execute_job(claim.job, claim.kind)
                    record.phases = artefact.pop("_phases", None)
                    cache.put(key, artefact, meta={
                        "job_id": claim.job.job_id,
                        "circuit": claim.job.circuit,
                        "config_hash": config_hash,
                        "code": code_fp,
                        "worker": stats.worker_id,
                    })
                    record.status = "done"
                    record.source = "run"
                    record.wall_s = artefact["elapsed_s"]
                    stats.executed += 1
                job_span.attrs["source"] = record.source
            queue.complete(claim, record)
            trace_flush()
            if verbose:
                print(f"[{stats.worker_id}] {claim.job.job_id}: "
                      f"{record.source} ({job_watch.elapsed_s:.2f}s)",
                      flush=True)
        except KeyboardInterrupt:
            # Return the claim promptly instead of waiting out the TTL.
            try:
                os.rename(claim.path,
                          queue._dir("pending") / claim.name)
            except OSError:  # pragma: no cover - lease already gone
                pass
            raise
        except Exception as exc:  # noqa: BLE001 - worker must survive
            attempts = claim.attempts + 1
            if attempts < budget:
                queue.release(claim, attempts=attempts)
                stats.retried += 1
                if verbose:
                    print(f"[{stats.worker_id}] {claim.job.job_id}: "
                          f"retrying (attempt {attempts}/{budget}: "
                          f"{exc})", flush=True)
            else:
                queue.fail(
                    claim, f"{type(exc).__name__}: {exc}",
                    traceback_text=traceback.format_exc(),
                    attempts=attempts, worker_id=stats.worker_id)
                stats.failed += 1
                if verbose:
                    print(f"[{stats.worker_id}] {claim.job.job_id}: "
                          f"FAILED after {attempts} attempt(s) "
                          f"({exc})", flush=True)
    stats.wall_s = watch.elapsed_s
    trace_flush()
    return stats
