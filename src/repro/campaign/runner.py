"""Campaign execution: job graph -> pool -> cache -> ordered results.

:func:`run_flow_jobs` is the shared engine: it takes an ordered list of
:class:`~repro.campaign.manifest.CampaignJob`\\ s, consults the
content-addressed cache, executes the misses (inline or on a
:class:`~repro.campaign.pool.WorkerPool`), checkpoints every completion
into the cache and manifest as it lands, and returns artefacts in job
order regardless of worker scheduling.  :func:`run_campaign` wraps it
with spec expansion and manifest bookkeeping; the experiment harnesses
(``run_table1``, the ablations) call :func:`run_flow_jobs` directly so
their serial and parallel paths share one artefact builder and produce
bit-identical rows.

A *flow artefact* is the JSON-serializable distillate of one
:class:`~repro.core.flow.FlowResult`: the Table-I row, the three power
reports, the human summary and the detail counters the ablation
renderers need.  Floats survive the JSON round-trip exactly
(``repr``-based encoding), so cached rows are bit-identical to freshly
computed ones.
"""

from __future__ import annotations

import dataclasses
from collections.abc import Sequence
from typing import Any

from repro.benchgen.loader import circuit_provenance, load_circuit
from repro.campaign.cache import ResultCache
from repro.campaign.manifest import (
    CampaignJob,
    CampaignSpec,
    JobRecord,
    Manifest,
)
from repro.campaign.pool import WorkerPool
from repro.experiments.results import Table1Row
from repro.obs.trace import collect_phases, span
from repro.utils.hashing import package_fingerprint
from repro.utils.tables import format_table

__all__ = ["FLOW_ARTEFACT_KIND", "FIGURE2_ARTEFACT_KIND",
           "CampaignResult", "run_campaign", "run_flow_jobs",
           "flow_artefact", "row_from_artefact", "figure2_artefact",
           "figure2_from_artefact", "execute_job", "job_identity"]

#: Cache kind tag; bump the suffix when the artefact schema changes.
FLOW_ARTEFACT_KIND = "flow-artefact/v1"

#: Cache kind tag of Figure-2 leakage-table artefacts.
FIGURE2_ARTEFACT_KIND = "figure2-artefact/v1"

#: Stand-in circuit fingerprint for circuit-free figure2 jobs: the
#: leakage tables depend on the default library/technology only (the
#: code fingerprint in the cache key covers changes to either).
_FIGURE2_FINGERPRINT = "figure2:default-library"


def flow_artefact(job: CampaignJob, provenance: str, result,
                  elapsed_s: float) -> dict[str, Any]:
    """Distil one :class:`FlowResult` into a JSON-serializable dict."""
    reports = {method: dataclasses.asdict(report)
               for method, report in result.reports.items()}
    row = Table1Row.from_reports(
        job.circuit,
        result.reports["traditional"],
        result.reports["input_control"],
        result.reports["proposed"],
    )
    return {
        "kind": FLOW_ARTEFACT_KIND,
        "job_id": job.job_id,
        "circuit": job.circuit,
        "seed": job.seed,
        "provenance": provenance,
        "row": dataclasses.asdict(row),
        "reports": reports,
        "summary": result.summary(),
        "detail": {
            "n_scan_cells": len(result.design.pseudo_inputs),
            "n_blocked": len(result.pattern.blocked_gates),
            "n_muxable": len(result.addmux.muxable),
            "mux_coverage": result.addmux.coverage,
            "n_swapped": (len(result.reorder.swapped_gates)
                          if result.reorder is not None else 0),
        },
        "elapsed_s": elapsed_s,
    }


def row_from_artefact(artefact: dict[str, Any]) -> Table1Row:
    """Rebuild the Table-I row (floats round-trip exactly)."""
    return Table1Row(**artefact["row"])


def _execute_flow_job(payload: dict[str, Any]) -> dict[str, Any]:
    """Worker entry point: run the full flow for one job (picklable).

    The job's elapsed time is the ``job.execute`` span's own duration
    (one ``time.monotonic()`` pair — the manifest and the trace can
    never disagree); the phase totals its nested spans accumulated
    ride back in the transient ``_phases`` key, popped by every
    consumer before the artefact is cached.
    """
    from repro.core.flow import ProposedFlow
    job = CampaignJob(**payload)
    with collect_phases() as phases:
        with span("job.execute", job=job.job_id, kind="flow") as sp:
            circuit = load_circuit(job.circuit, seed=job.circuit_seed)
            result = ProposedFlow(job.flow_config()).run(circuit)
    artefact = flow_artefact(job, circuit_provenance(job.circuit),
                             result, sp.dur_s)
    artefact["_phases"] = phases
    return artefact


def _pattern_table_to_json(table: dict) -> dict[str, float]:
    """``{(0, 1): leak}`` -> ``{"01": leak}`` (JSON-safe keys)."""
    return {"".join(str(b) for b in pattern): leak
            for pattern, leak in table.items()}


def _pattern_table_from_json(table: dict) -> dict:
    return {tuple(int(c) for c in key): leak
            for key, leak in table.items()}


def figure2_artefact(job: CampaignJob, run, elapsed_s: float
                     ) -> dict[str, Any]:
    """Distil one :class:`~repro.experiments.figure2.Figure2Run`."""
    return {
        "kind": FIGURE2_ARTEFACT_KIND,
        "job_id": job.job_id,
        "circuit": job.circuit,
        "seed": job.seed,
        "nand2": _pattern_table_to_json(run.nand2),
        "paper_nand2": _pattern_table_to_json(run.paper_nand2),
        "extra_cells": {cell: _pattern_table_to_json(table)
                        for cell, table in run.extra_cells.items()},
        "max_relative_error": run.max_relative_error(),
        "render": run.render(),
        "summary": (f"figure2: max NAND2 model error "
                    f"{run.max_relative_error():.2%} vs the paper"),
        "elapsed_s": elapsed_s,
    }


def figure2_from_artefact(artefact: dict[str, Any]):
    """Rebuild the :class:`Figure2Run` (floats round-trip exactly)."""
    from repro.experiments.figure2 import Figure2Run
    return Figure2Run(
        nand2=_pattern_table_from_json(artefact["nand2"]),
        paper_nand2=_pattern_table_from_json(artefact["paper_nand2"]),
        extra_cells={cell: _pattern_table_from_json(table)
                     for cell, table in artefact["extra_cells"].items()},
    )


def _execute_figure2_job(payload: dict[str, Any]) -> dict[str, Any]:
    """Worker entry point: one Figure-2 leakage evaluation (picklable)."""
    from repro.experiments.figure2 import run_figure2
    job = CampaignJob(**payload)
    with collect_phases() as phases:
        with span("job.execute", job=job.job_id, kind="figure2") as sp:
            run = run_figure2()
    artefact = figure2_artefact(job, run, sp.dur_s)
    artefact["_phases"] = phases
    return artefact


#: Executor per artefact kind, resolved by module attribute at call
#: time so tests can monkeypatch the worker entry points.
_EXECUTORS = {
    FLOW_ARTEFACT_KIND: "_execute_flow_job",
    FIGURE2_ARTEFACT_KIND: "_execute_figure2_job",
}


def execute_job(job: CampaignJob, kind: str = FLOW_ARTEFACT_KIND
                ) -> dict[str, Any]:
    """Execute one campaign job in-process and return its artefact.

    The one entry point the in-process runner, the queue worker and
    the service's compute-on-miss path share; ``kind`` selects the
    executor (resolved by module attribute at call time, so tests can
    monkeypatch the underlying worker functions).
    """
    if kind not in _EXECUTORS:
        raise ValueError(f"unknown campaign job kind {kind!r}")
    return globals()[_EXECUTORS[kind]](dataclasses.asdict(job))


def job_identity(job: CampaignJob, kind: str = FLOW_ARTEFACT_KIND, *,
                 cache: ResultCache | None = None,
                 code_fingerprint: str | None = None,
                 fingerprints: dict[tuple[str, int], str] | None = None
                 ) -> tuple[str, str | None]:
    """``(config_hash, cache_key)`` of one campaign job.

    The canonical key derivation every consumer — the in-process
    runner, the multi-host queue worker and the artifact service —
    must share, so a job computed anywhere lands under the same
    content address.  ``cache_key`` is ``None`` without a ``cache``.
    ``fingerprints`` memoizes circuit fingerprints per
    ``(circuit, circuit_seed)`` across calls (one netlist load each).
    """
    if kind == FIGURE2_ARTEFACT_KIND:
        # run_figure2() ignores the flow config (and the seed), so
        # hashing it would split byte-identical artefacts across keys;
        # the code fingerprint covers the library.  Still build the
        # config so typo'd spec fields error like any other campaign.
        job.flow_config()
        config_hash = "figure2"
    else:
        config_hash = job.flow_config().config_hash()
    if cache is None:
        return config_hash, None
    if kind == FIGURE2_ARTEFACT_KIND:
        fingerprint = _FIGURE2_FINGERPRINT
    else:
        loader_key = (job.circuit, job.circuit_seed)
        fingerprint = None if fingerprints is None \
            else fingerprints.get(loader_key)
        if fingerprint is None:
            fingerprint = load_circuit(
                job.circuit, seed=job.circuit_seed).fingerprint()
            if fingerprints is not None:
                fingerprints[loader_key] = fingerprint
    if code_fingerprint is None:
        code_fingerprint = package_fingerprint()
    return config_hash, cache.key(kind, fingerprint, config_hash,
                                  code_fingerprint)


def run_flow_jobs(jobs_list: Sequence[CampaignJob], *,
                  jobs: int = 1,
                  cache: ResultCache | None = None,
                  manifest: Manifest | None = None,
                  pool: WorkerPool | None = None,
                  verbose: bool = False,
                  kind: str = FLOW_ARTEFACT_KIND
                  ) -> tuple[list[dict[str, Any]], list[JobRecord],
                             float, float]:
    """Run ``jobs_list``; returns ``(artefacts, records, wall_s,
    worker_s)``.

    ``artefacts`` and ``records`` are in job order.  ``wall_s`` is the
    monotonic wall clock of the whole call; ``worker_s`` is the
    aggregate compute time of the jobs that actually executed (cache
    hits contribute their *historical* ``elapsed_s`` to the artefact
    but not to ``worker_s``), so ``worker_s / wall_s`` is the honest
    parallel speedup.

    ``pool`` may be an externally owned (already started)
    :class:`WorkerPool`; otherwise one is created for ``jobs > 1`` and
    closed before returning.  Every completed job is checkpointed into
    ``cache`` and ``manifest`` as it lands, in completion order, so an
    interrupted run resumes from all finished jobs.

    ``kind`` selects the artefact each job computes (and its cache
    namespace): :data:`FLOW_ARTEFACT_KIND` runs the full flow,
    :data:`FIGURE2_ARTEFACT_KIND` evaluates the Figure-2 leakage
    tables (circuit-free; jobs are keyed on config + code only).
    """
    if jobs < 1:
        raise ValueError("jobs must be >= 1")
    if kind not in _EXECUTORS:
        raise ValueError(f"unknown campaign job kind {kind!r}")
    execute = globals()[_EXECUTORS[kind]]
    code_fp = package_fingerprint() if cache is not None else ""

    records: list[JobRecord] = []
    keys: list[str | None] = []
    artefacts: list[dict[str, Any] | None] = [None] * len(jobs_list)
    pending: list[int] = []
    fingerprints: dict[tuple[str, int], str] = {}  # one load per netlist
    # The campaign.run span doubles as the wall clock: wall_s below is
    # its own duration, so the manifest and a --trace capture of the
    # same run can never disagree about the campaign's wall time.
    with span("campaign.run", jobs=len(jobs_list),
              kind=kind) as run_span:
        with span("campaign.scan", jobs=len(jobs_list)):
            for index, job in enumerate(jobs_list):
                config_hash, key = job_identity(
                    job, kind, cache=cache,
                    code_fingerprint=code_fp or None,
                    fingerprints=fingerprints)
                keys.append(key)
                record = JobRecord(job_id=job.job_id,
                                   circuit=job.circuit,
                                   seed=job.seed,
                                   config_hash=config_hash,
                                   cache_key=key)
                records.append(record)
                hit = cache.get(key) if key is not None else None
                if hit is not None:
                    artefacts[index] = hit
                    record.status = "done"
                    record.source = "cache"
                    if verbose:
                        print(f"[cache] {job.job_id}", flush=True)
                else:
                    pending.append(index)
                if manifest is not None:
                    manifest.record(record, save=False)
            if manifest is not None:
                manifest.save()

        worker_s = 0.0

        def finish(index: int, artefact: dict[str, Any]) -> None:
            nonlocal worker_s
            phases = artefact.pop("_phases", None)  # before caching
            artefacts[index] = artefact
            worker_s += artefact["elapsed_s"]
            record = records[index]
            record.status = "done"
            record.source = "run"
            record.wall_s = artefact["elapsed_s"]
            record.phases = phases
            if cache is not None:
                job = jobs_list[index]
                cache.put(keys[index], artefact, meta={
                    "job_id": job.job_id,
                    "circuit": job.circuit,
                    "config_hash": record.config_hash,
                    "code": code_fp,
                })
            if manifest is not None:
                manifest.record(record)
            if verbose:
                print(artefact["summary"], flush=True)
                print(f"  [{artefact['elapsed_s']:.1f}s]", flush=True)

        try:
            if pending and jobs > 1 and len(pending) > 1:
                payloads = [dataclasses.asdict(jobs_list[i])
                            for i in pending]
                owned = pool is None
                active = pool if pool is not None else WorkerPool(
                    processes=min(jobs, len(pending)))
                try:
                    active.map(
                        execute, payloads,
                        on_result=lambda pos, artefact: finish(
                            pending[pos], artefact))
                finally:
                    if owned:
                        active.close()
            else:
                for index in pending:
                    artefact = execute(
                        dataclasses.asdict(jobs_list[index]))
                    finish(index, artefact)
        except BaseException as exc:
            for record in records:
                if record.status == "pending":
                    record.status = "failed"
                    record.error = str(exc)
            if manifest is not None:
                manifest.save()
            raise

    return artefacts, records, run_span.dur_s, worker_s  # type: ignore


@dataclasses.dataclass
class CampaignResult:
    """Everything one campaign run produced, in job order."""

    spec: CampaignSpec
    jobs: list[CampaignJob]
    artefacts: list[dict[str, Any]]
    records: list[JobRecord]
    wall_s: float
    #: Aggregate compute seconds of the jobs that actually executed.
    worker_s: float

    @property
    def n_cached(self) -> int:
        return sum(1 for r in self.records if r.source == "cache")

    @property
    def n_executed(self) -> int:
        return sum(1 for r in self.records if r.source == "run")

    def rows(self) -> list[Table1Row]:
        """Table-I rows for every job, in job order (flow kind only)."""
        return [row_from_artefact(a) for a in self.artefacts]

    def render(self) -> str:
        """Fixed-width status report of the campaign."""
        table = [
            [record.job_id, record.circuit, str(record.seed),
             record.status, record.source or "-",
             f"{artefact['elapsed_s']:.2f}" if artefact else "-"]
            for record, artefact in zip(self.records, self.artefacts)
        ]
        lines = [format_table(
            ["job", "circuit", "seed", "status", "source", "compute s"],
            table)]
        lines.append("")
        lines.append(
            f"Campaign {self.spec.name!r}: {len(self.jobs)} job(s) — "
            f"{self.n_executed} executed, {self.n_cached} from cache; "
            f"wall {self.wall_s:.2f}s, worker {self.worker_s:.2f}s")
        return "\n".join(lines)


def run_campaign(spec: CampaignSpec, *,
                 jobs: int = 1,
                 cache_dir: str | None = None,
                 manifest_path: str | None = None,
                 pool: WorkerPool | None = None,
                 verbose: bool = False) -> CampaignResult:
    """Expand ``spec`` and run it; see :func:`run_flow_jobs`.

    ``cache_dir`` enables the content-addressed artefact cache (re-runs
    with an unchanged spec, netlists and code complete without a single
    flow execution); ``manifest_path`` journals per-job status there.
    """
    expanded = spec.expand()
    cache = ResultCache(cache_dir) if cache_dir is not None else None
    manifest = Manifest.open(manifest_path, spec.digest()) \
        if manifest_path is not None else None
    kind = FIGURE2_ARTEFACT_KIND if spec.kind == "figure2" \
        else FLOW_ARTEFACT_KIND
    artefacts, records, wall_s, worker_s = run_flow_jobs(
        expanded, jobs=jobs, cache=cache, manifest=manifest, pool=pool,
        verbose=verbose, kind=kind)
    return CampaignResult(spec=spec, jobs=expanded, artefacts=artefacts,
                          records=records, wall_s=wall_s,
                          worker_s=worker_s)
