"""Gate-level decompositions used by the technology mapper.

Pure structural rewrites, each returning the list of gates (as
``(output, gtype, inputs)`` triples) that implements one original gate in
the target NAND/NOR/INV library.  Fresh intermediate names come from a
:class:`NameAllocator` so mapped netlists never collide with user names.
"""

from __future__ import annotations

from repro.errors import MappingError
from repro.netlist.circuit import Circuit
from repro.netlist.gates import GateType

__all__ = ["NameAllocator", "decompose_gate", "tree_groups"]

GateTriple = tuple[str, GateType, tuple[str, ...]]


class NameAllocator:
    """Generates fresh line names that do not clash with a circuit."""

    def __init__(self, circuit: Circuit, prefix: str = "tm"):
        self._taken = set(circuit.lines())
        self._prefix = prefix
        self._counter = 0

    def fresh(self, hint: str = "") -> str:
        """A new unique name; ``hint`` aids debugging readability."""
        while True:
            tag = f"_{hint}" if hint else ""
            name = f"{self._prefix}{self._counter}{tag}"
            self._counter += 1
            if name not in self._taken:
                self._taken.add(name)
                return name

    def reserve(self, name: str) -> None:
        """Mark an externally created name as taken."""
        self._taken.add(name)


def tree_groups(items: list[str], max_arity: int) -> list[list[str]]:
    """Split ``items`` into chunks of at most ``max_arity`` for one tree
    level (used to reduce wide gates to a balanced tree)."""
    if max_arity < 2:
        raise MappingError("max_arity must be >= 2")
    return [items[i:i + max_arity] for i in range(0, len(items), max_arity)]


def _and_tree(inputs: list[str], out: str, invert_root: bool,
              alloc: NameAllocator, max_arity: int) -> list[GateTriple]:
    """AND-reduce ``inputs``; the root is NAND(+INV) per ``invert_root``.

    Intermediate levels are NAND followed by INV (AND in the target
    library); the final level becomes a NAND when ``invert_root`` is True
    (implementing NAND/AND of the whole input set with one fewer
    inverter).
    """
    level = list(inputs)
    gates: list[GateTriple] = []
    while len(level) > max_arity:
        next_level: list[str] = []
        for group in tree_groups(level, max_arity):
            if len(group) == 1:
                next_level.append(group[0])
                continue
            nand_out = alloc.fresh("nd")
            inv_out = alloc.fresh("and")
            gates.append((nand_out, GateType.NAND, tuple(group)))
            gates.append((inv_out, GateType.NOT, (nand_out,)))
            next_level.append(inv_out)
        level = next_level
    if invert_root:
        gates.append((out, GateType.NAND, tuple(level)))
    else:
        nand_out = alloc.fresh("nd")
        gates.append((nand_out, GateType.NAND, tuple(level)))
        gates.append((out, GateType.NOT, (nand_out,)))
    return gates


def _or_tree(inputs: list[str], out: str, invert_root: bool,
             alloc: NameAllocator, max_arity: int) -> list[GateTriple]:
    """OR-reduce dual of :func:`_and_tree` (NOR-based)."""
    level = list(inputs)
    gates: list[GateTriple] = []
    while len(level) > max_arity:
        next_level: list[str] = []
        for group in tree_groups(level, max_arity):
            if len(group) == 1:
                next_level.append(group[0])
                continue
            nor_out = alloc.fresh("nr")
            inv_out = alloc.fresh("or")
            gates.append((nor_out, GateType.NOR, tuple(group)))
            gates.append((inv_out, GateType.NOT, (nor_out,)))
            next_level.append(inv_out)
        level = next_level
    if invert_root:
        gates.append((out, GateType.NOR, tuple(level)))
    else:
        nor_out = alloc.fresh("nr")
        gates.append((nor_out, GateType.NOR, tuple(level)))
        gates.append((out, GateType.NOT, (nor_out,)))
    return gates


def _xor2(a: str, b: str, out: str, alloc: NameAllocator
          ) -> list[GateTriple]:
    """Four-NAND XOR2."""
    m = alloc.fresh("xm")
    p = alloc.fresh("xp")
    q = alloc.fresh("xq")
    return [
        (m, GateType.NAND, (a, b)),
        (p, GateType.NAND, (a, m)),
        (q, GateType.NAND, (b, m)),
        (out, GateType.NAND, (p, q)),
    ]


def _xor_ladder(inputs: list[str], out: str, invert: bool,
                alloc: NameAllocator) -> list[GateTriple]:
    gates: list[GateTriple] = []
    acc = inputs[0]
    for i, nxt in enumerate(inputs[1:]):
        is_last = i == len(inputs) - 2
        if is_last and not invert:
            target = out
        else:
            target = alloc.fresh("xr")
        gates.extend(_xor2(acc, nxt, target, alloc))
        acc = target
    if invert:
        gates.append((out, GateType.NOT, (acc,)))
    return gates


def decompose_gate(output: str, gtype: GateType, inputs: tuple[str, ...],
                   alloc: NameAllocator,
                   max_arity: int = 4) -> list[GateTriple]:
    """Implement one gate in the NAND/NOR/INV library.

    Returns the replacement gate list; the last-produced gate (or the one
    named ``output``) drives the original output line.  DFF/CONST gates
    pass through unchanged; already-native gates within the arity bound
    pass through too.
    """
    ins = list(inputs)
    if gtype in (GateType.DFF, GateType.CONST0, GateType.CONST1,
                 GateType.NOT):
        return [(output, gtype, inputs)]
    if gtype is GateType.BUFF:
        mid = alloc.fresh("bf")
        return [(mid, GateType.NOT, inputs), (output, GateType.NOT, (mid,))]
    if gtype is GateType.NAND:
        if len(ins) <= max_arity:
            return [(output, gtype, inputs)]
        return _and_tree(ins, output, True, alloc, max_arity)
    if gtype is GateType.NOR:
        if len(ins) <= max_arity:
            return [(output, gtype, inputs)]
        return _or_tree(ins, output, True, alloc, max_arity)
    if gtype is GateType.AND:
        return _and_tree(ins, output, False, alloc, max_arity)
    if gtype is GateType.OR:
        return _or_tree(ins, output, False, alloc, max_arity)
    if gtype is GateType.XOR:
        return _xor_ladder(ins, output, False, alloc)
    if gtype is GateType.XNOR:
        return _xor_ladder(ins, output, True, alloc)
    if gtype is GateType.MUX2:
        sel, d0, d1 = ins
        sb = alloc.fresh("sb")
        u = alloc.fresh("mu")
        v = alloc.fresh("mv")
        return [
            (sb, GateType.NOT, (sel,)),
            (u, GateType.NAND, (d0, sb)),
            (v, GateType.NAND, (d1, sel)),
            (output, GateType.NAND, (u, v)),
        ]
    raise MappingError(f"cannot decompose gate type {gtype}")
