"""Technology mapping to the NAND/NOR/INV library and its verification."""

from repro.techmap.decompose import NameAllocator, decompose_gate, tree_groups
from repro.techmap.mapper import is_mapped, technology_map
from repro.techmap.verify import assert_equivalent, equivalence_check

__all__ = [
    "technology_map",
    "is_mapped",
    "decompose_gate",
    "tree_groups",
    "NameAllocator",
    "equivalence_check",
    "assert_equivalent",
]
