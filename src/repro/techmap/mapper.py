"""Technology mapping to the paper's {NAND, NOR, INV} library.

The paper: "A technology mapping was used to map the circuit to a library,
which contains only NAND gates, NOR gates, and inverters."  This mapper
rewrites every combinational gate through
:func:`repro.techmap.decompose.decompose_gate`, preserving all primary
input/output and flop boundary names, and bounding gate fan-in by the
library's maximum arity (NAND4/NOR4 by default).
"""

from __future__ import annotations

from repro.errors import MappingError
from repro.netlist.circuit import Circuit
from repro.netlist.gates import GateType
from repro.spice.characterize import MAX_CELL_ARITY
from repro.techmap.decompose import NameAllocator, decompose_gate

__all__ = ["technology_map", "is_mapped"]

_NATIVE = {GateType.NAND, GateType.NOR, GateType.NOT,
           GateType.DFF, GateType.CONST0, GateType.CONST1}


def is_mapped(circuit: Circuit, max_arity: int = MAX_CELL_ARITY) -> bool:
    """True if every gate already fits the NAND/NOR/INV library."""
    for gate in circuit.gates.values():
        if gate.gtype not in _NATIVE:
            return False
        if gate.gtype in (GateType.NAND, GateType.NOR) and \
                len(gate.inputs) > max_arity:
            return False
    return True


def technology_map(circuit: Circuit,
                   max_arity: int = MAX_CELL_ARITY) -> Circuit:
    """Map ``circuit`` to NAND/NOR/INV; returns a new circuit.

    Line names of primary inputs, primary outputs and every original gate
    output are preserved (internal tree nodes get fresh ``tm*`` names), so
    downstream references — scan chains, fault lists — remain valid.
    """
    if max_arity < 2:
        raise MappingError("max_arity must be >= 2")
    mapped = Circuit(circuit.name)
    for pi in circuit.inputs:
        mapped.add_input(pi)
    alloc = NameAllocator(circuit)
    for gate in circuit.gates.values():
        triples = decompose_gate(
            gate.output, gate.gtype, gate.inputs, alloc, max_arity)
        for out, gtype, ins in triples:
            mapped.add_gate(out, gtype, ins)
    for po in circuit.outputs:
        mapped.add_output(po)
    mapped.validate()
    if not is_mapped(mapped, max_arity):
        raise MappingError("mapping left non-native gates behind")
    return mapped
