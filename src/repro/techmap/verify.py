"""Functional equivalence checking between a circuit and its mapped form.

Two circuits are compared on their *combinational test view*: same primary
inputs and DFF output (pseudo-input) names in, same primary outputs and
DFF input (pseudo-output) values out.  Small input counts are checked
exhaustively; larger ones with packed random vectors.
"""

from __future__ import annotations

import numpy as np

from repro.errors import MappingError
from repro.simulation.bitsim import simulate_packed
from repro.simulation.eval2 import comb_input_lines
from repro.simulation.values import mask
from repro.utils.rng import make_rng

__all__ = ["equivalence_check", "assert_equivalent"]


def _observables(circuit) -> list[str]:
    obs = list(circuit.outputs)
    obs.extend(g.inputs[0] for g in circuit.dff_gates)
    return obs


def equivalence_check(original, mapped, n_random: int = 512,
                      seed: int | np.random.Generator | None = 0,
                      exhaustive_limit: int = 14) -> bool:
    """True when both circuits compute the same test-view function.

    Exhaustive for up to ``exhaustive_limit`` combinational inputs,
    otherwise ``n_random`` packed random vectors (same stimulus applied to
    both circuits).
    """
    in_lines = comb_input_lines(original)
    if set(in_lines) != set(comb_input_lines(mapped)):
        return False
    obs = _observables(original)
    if set(obs) != set(_observables(mapped)):
        return False

    n_inputs = len(in_lines)
    if n_inputs <= exhaustive_limit:
        n = 1 << n_inputs
        words = {
            line: _counter_word(i, n) for i, line in enumerate(in_lines)
        }
    else:
        n = n_random
        rng = make_rng(seed)
        full = mask(n)
        n_bytes = (n + 7) // 8
        words = {
            line: int.from_bytes(rng.bytes(n_bytes), "little") & full
            for line in in_lines
        }

    w1 = simulate_packed(original, words, n)
    w2 = simulate_packed(mapped, words, n)
    return all(w1[line] == w2[line] for line in obs)


def _counter_word(bit_index: int, n: int) -> int:
    """Packed waveform of input ``bit_index`` counting through 0..n-1."""
    word = 0
    for t in range(n):
        if (t >> bit_index) & 1:
            word |= 1 << t
    return word


def assert_equivalent(original, mapped, **kwargs) -> None:
    """Raise :class:`MappingError` when the equivalence check fails."""
    if not equivalence_check(original, mapped, **kwargs):
        raise MappingError(
            f"{mapped.name}: mapped circuit is not equivalent to original")
