"""Static timing analysis: arrival, required, slack, critical delay.

Timing graph conventions:

* **Sources**: primary inputs (launch 0) and flop Q lines (launch clk-to-Q
  under the library model).
* **Endpoints**: primary output lines and flop D lines.
* ``arrival(line)`` — longest path to the line; ``required(line)`` — latest
  tolerable arrival against the analysis period (default: the critical
  delay itself, so the most critical lines have slack 0).

`source_offsets` models *what-if* edits without rebuilding the netlist —
inserting a MUX behind scan cell Q adds `mux_delay` at that source, which
is exactly the paper's AddMUX feasibility question.  Under this model,
``critical delay changes  <=>  slack(source) < offset``; the AddMUX module
exploits (and property-tests) that equivalence.
"""

from __future__ import annotations

import dataclasses
from collections.abc import Mapping

from repro.errors import TimingError
from repro.netlist.circuit import Circuit
from repro.netlist.gates import SEQUENTIAL_TYPES
from repro.timing.delay import DelayModel

__all__ = ["StaResult", "run_sta", "timing_sources", "timing_endpoints"]


def timing_sources(circuit: Circuit) -> list[str]:
    """Source lines of the timing graph (PIs, then flop Q lines)."""
    return list(circuit.inputs) + circuit.dff_outputs


def timing_endpoints(circuit: Circuit) -> list[str]:
    """Endpoint lines (PO lines and flop D lines), deduplicated."""
    endpoints: list[str] = []
    seen: set[str] = set()
    for line in list(circuit.outputs) + [
            g.inputs[0] for g in circuit.dff_gates]:
        if line not in seen:
            seen.add(line)
            endpoints.append(line)
    return endpoints


@dataclasses.dataclass
class StaResult:
    """Full STA annotation of one circuit under one delay model."""

    arrival: dict[str, float]
    required: dict[str, float]
    critical_delay: float
    period: float

    def slack(self, line: str) -> float:
        """Required minus arrival at ``line``."""
        try:
            return self.required[line] - self.arrival[line]
        except KeyError:
            raise TimingError(f"line {line!r} not in timing graph") from None

    def slacks(self) -> dict[str, float]:
        """Slack for every line in the timing graph."""
        return {line: self.required[line] - self.arrival[line]
                for line in self.arrival}


def run_sta(circuit: Circuit, model: DelayModel,
            source_offsets: Mapping[str, float] | None = None,
            period: float | None = None) -> StaResult:
    """Compute arrival/required/slack for every line.

    Parameters
    ----------
    circuit, model:
        The circuit and its per-line delay annotation.
    source_offsets:
        Extra launch delay per source line (what-if MUX insertion).
    period:
        Analysis period for required times; defaults to the computed
        critical delay (so the critical path gets slack exactly 0).
    """
    offsets = dict(source_offsets or {})
    arrival: dict[str, float] = {}
    for src in timing_sources(circuit):
        arrival[src] = model.launch_of(src) + offsets.get(src, 0.0)
    for line in circuit.topo_order():
        gate = circuit.gates[line]
        fanin_arrival = max(
            (arrival[s] for s in gate.inputs), default=0.0)
        arrival[line] = fanin_arrival + model.delay_of(line)

    endpoints = timing_endpoints(circuit)
    critical = max((arrival[e] for e in endpoints), default=0.0)
    analysis_period = critical if period is None else period

    required: dict[str, float] = {line: float("inf") for line in arrival}
    endpoint_set = set(endpoints)
    for line in endpoint_set:
        required[line] = analysis_period
    for line in reversed(circuit.topo_order()):
        gate = circuit.gates[line]
        req_out = required[line] - model.delay_of(line)
        for src in gate.inputs:
            if req_out < required[src]:
                required[src] = req_out
    # Re-impose endpoint requirements that propagation may have tightened
    # is not needed: required[] is a min, endpoints start at the period and
    # can only get tighter via real fanout, which is correct.

    # Sources that reach nothing keep +inf required; clamp to the period so
    # slack is finite and meaningfully large.
    for line, req in required.items():
        if req == float("inf"):
            required[line] = analysis_period

    return StaResult(arrival=arrival, required=required,
                     critical_delay=critical, period=analysis_period)


def critical_path(circuit: Circuit, model: DelayModel,
                  sta: StaResult) -> list[str]:
    """One maximal-delay path (source -> endpoint) as a list of lines."""
    endpoints = timing_endpoints(circuit)
    if not endpoints:
        return []
    end = max(endpoints, key=lambda e: sta.arrival[e])
    path = [end]
    current = end
    while current in circuit.gates and \
            circuit.gates[current].gtype not in SEQUENTIAL_TYPES:
        gate = circuit.gates[current]
        current = max(gate.inputs, key=lambda s: sta.arrival[s])
        path.append(current)
    path.reverse()
    return path
