"""Static timing analysis: delay models, arrival/required/slack, paths."""

from repro.timing.delay import DelayModel, LibraryDelay, UnitDelay
from repro.timing.sta import (
    StaResult,
    critical_path,
    run_sta,
    timing_endpoints,
    timing_sources,
)

__all__ = [
    "DelayModel",
    "UnitDelay",
    "LibraryDelay",
    "StaResult",
    "run_sta",
    "critical_path",
    "timing_sources",
    "timing_endpoints",
]
