"""Gate delay models for static timing analysis.

Two models:

* :class:`UnitDelay` — every combinational gate costs 1.0 (classic
  levelised timing, useful for tests and algorithm work);
* :class:`LibraryDelay` — linear model ``intrinsic + slope * C_load`` with
  loads extracted from the cell library (pin caps + wire + output load).

Both are pre-computed per circuit: model construction walks the netlist
once and stores a per-line delay, so STA itself is a pure traversal.
"""

from __future__ import annotations

from repro.cells.capacitance import line_load_ff
from repro.cells.library import CellLibrary, default_library
from repro.netlist.circuit import Circuit

__all__ = ["DelayModel", "UnitDelay", "LibraryDelay"]


class DelayModel:
    """Per-line gate delays for one circuit (base class).

    ``delay_of(line)`` is the pin-to-output delay of the gate driving
    ``line``; ``launch_of(line)`` is the arrival offset of a source line
    (0 for PIs, clk-to-Q for flop outputs).
    """

    def __init__(self, circuit: Circuit):
        self._circuit = circuit
        self._delays: dict[str, float] = {}
        self._launch: dict[str, float] = {}

    def delay_of(self, line: str) -> float:
        """Delay (ps) of the gate driving ``line``."""
        return self._delays[line]

    def launch_of(self, line: str) -> float:
        """Arrival-time offset (ps) of source line ``line``."""
        return self._launch.get(line, 0.0)

    @property
    def circuit(self) -> Circuit:
        return self._circuit


class UnitDelay(DelayModel):
    """Every combinational gate costs exactly one unit; sources launch at 0."""

    def __init__(self, circuit: Circuit):
        super().__init__(circuit)
        for line in circuit.topo_order():
            self._delays[line] = 1.0


class LibraryDelay(DelayModel):
    """Linear library delay model (``intrinsic + slope * C_load``).

    Flop outputs launch at the flop's clk-to-Q delay; loads exclude the
    cells' internal capacitances (those are folded into the intrinsic
    term, as is conventional).
    """

    def __init__(self, circuit: Circuit,
                 library: CellLibrary | None = None):
        super().__init__(circuit)
        library = library or default_library()
        self.library = library
        for line in circuit.topo_order():
            gate = circuit.gates[line]
            load = line_load_ff(circuit, line, library,
                                include_internal=False)
            self._delays[line] = library.delay_ps(
                gate.gtype, len(gate.inputs), load)
        clk_to_q = library.spec(
            circuit.dff_gates[0].gtype, 1).intrinsic_delay_ps \
            if circuit.dff_gates else 0.0
        for q_line in circuit.dff_outputs:
            self._launch[q_line] = clk_to_q
