"""Aggregated public API, re-exported lazily from :mod:`repro`.

Import from here (or from ``repro`` directly) in applications; import from
the subpackages in library-internal code.
"""

from __future__ import annotations

from repro.atpg import (
    AtpgConfig,
    Fault,
    TestSet,
    all_faults,
    collapse_faults,
    fault_simulate,
    generate_tests,
)
from repro.atpg.podem import PodemEngine
from repro.atpg.scoap import ScoapMeasures, compute_scoap
from repro.benchgen import (
    ISCAS89_STATS,
    TABLE1_CIRCUITS,
    available_circuits,
    circuit_provenance,
    generate_circuit,
    load_circuit,
)
from repro.campaign import (
    ArtifactService,
    CampaignJob,
    CampaignResult,
    CampaignSpec,
    ResultCache,
    ServiceServer,
    WorkQueue,
    load_spec,
    run_campaign,
    run_server,
    run_worker,
)
from repro.cells import (
    CellLibrary,
    CellSpec,
    default_library,
    describe_library,
)
from repro.chaos import (
    ChaosPolicy,
    RetryPolicy,
    retry_call,
)
from repro.core import (
    AddMuxResult,
    FlowConfig,
    FlowResult,
    PatternResult,
    ProposedFlow,
    add_mux,
    find_controlled_input_pattern,
    input_control_pattern,
)
from repro.experiments import (
    PAPER_TABLE1,
    run_figure2,
    run_table1,
)
from repro.leakage import (
    circuit_leakage_na,
    expected_leakage_na,
    monte_carlo_observability,
    random_fill_search,
    reorder_for_leakage,
)
from repro.netlist import (
    Circuit,
    Gate,
    GateType,
    X,
    circuit_stats,
    parse_bench,
    parse_bench_file,
    write_bench,
    write_bench_file,
)
from repro.power import (
    PeakPowerReport,
    ScanPowerReport,
    ShiftPolicy,
    analyze_peak_power,
    evaluate_scan_power,
)
from repro.runtime import (
    RuntimeOptions,
    session_defaults,
    set_session_defaults,
    using,
)
from repro.scan import (
    MultiChainDesign,
    MuxPlan,
    ScanCell,
    ScanChain,
    ScanDesign,
    TestVector,
    evaluate_multichain_power,
    insert_muxes,
    reorder_chain,
    reorder_vectors,
)
from repro.simulation import (
    Backend,
    EpisodeBatchResult,
    EpisodePlan,
    FaultEpisodePlan,
    FaultSimSession,
    SequentialSimulator,
    SimState,
    available_backends,
    compile_episode_plan,
    compile_fault_episode_plan,
    episode_batching_enabled,
    fault_planning_enabled,
    get_backend,
    register_backend,
    resolve_backend,
    set_default_backend,
    set_default_episode_batching,
    set_default_fault_planning,
    simulate_comb,
    simulate_comb3,
    simulate_cycles,
    simulate_packed,
)
from repro.spice import (
    PAPER_NAND2_LEAKAGE_NA,
    TechParams,
    calibrate_to_figure2,
    cell_leakage_table,
    default_tech,
)
from repro.techmap import equivalence_check, technology_map
from repro.timing import LibraryDelay, UnitDelay, critical_path, run_sta

__all__ = [
    # netlist
    "Circuit", "Gate", "GateType", "X", "circuit_stats",
    "parse_bench", "parse_bench_file", "write_bench", "write_bench_file",
    # spice / cells
    "TechParams", "default_tech", "calibrate_to_figure2",
    "cell_leakage_table", "PAPER_NAND2_LEAKAGE_NA",
    "CellLibrary", "CellSpec", "default_library", "describe_library",
    # techmap / timing / simulation
    "technology_map", "equivalence_check",
    "LibraryDelay", "UnitDelay", "run_sta", "critical_path",
    "simulate_comb", "simulate_comb3", "simulate_packed",
    "simulate_cycles", "SequentialSimulator",
    # simulation backends
    "Backend", "SimState", "available_backends", "get_backend",
    "register_backend", "resolve_backend", "set_default_backend",
    "EpisodePlan", "EpisodeBatchResult", "compile_episode_plan",
    "episode_batching_enabled", "set_default_episode_batching",
    "FaultEpisodePlan", "FaultSimSession", "compile_fault_episode_plan",
    "fault_planning_enabled", "set_default_fault_planning",
    # scan / power
    "ScanCell", "ScanChain", "ScanDesign", "TestVector",
    "MuxPlan", "insert_muxes",
    "MultiChainDesign", "evaluate_multichain_power",
    "reorder_vectors", "reorder_chain",
    "ShiftPolicy", "ScanPowerReport", "evaluate_scan_power",
    "PeakPowerReport", "analyze_peak_power",
    # leakage
    "circuit_leakage_na", "expected_leakage_na",
    "monte_carlo_observability", "random_fill_search",
    "reorder_for_leakage",
    # atpg
    "Fault", "all_faults", "collapse_faults", "fault_simulate",
    "AtpgConfig", "TestSet", "generate_tests",
    "PodemEngine", "ScoapMeasures", "compute_scoap",
    # core
    "FlowConfig", "ProposedFlow", "FlowResult", "AddMuxResult",
    "add_mux", "PatternResult", "find_controlled_input_pattern",
    "input_control_pattern",
    # benchmarks / experiments
    "load_circuit", "generate_circuit", "available_circuits",
    "circuit_provenance", "ISCAS89_STATS", "TABLE1_CIRCUITS",
    "run_table1", "run_figure2", "PAPER_TABLE1",
    # runtime options (session defaults for every engine toggle)
    "RuntimeOptions", "session_defaults", "set_session_defaults",
    "using",
    # campaigns / distributed workers / artifact service
    "CampaignSpec", "CampaignJob", "CampaignResult", "load_spec",
    "run_campaign", "ResultCache",
    "WorkQueue", "run_worker",
    "ArtifactService", "ServiceServer", "run_server",
    # chaos engineering (fault injection + retry policies)
    "ChaosPolicy", "RetryPolicy", "retry_call",
]
