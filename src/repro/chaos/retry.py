"""Shared retry helper: capped exponential backoff, deterministic jitter.

The campaign stack's transactional writes (queue files, cache
artefacts, manifest rewrites) and lease heartbeats all retry transient
I/O failures through one :func:`retry_call`, so budgets and backoff
live in one place instead of per-site ``except OSError`` scatter.

Backoff for attempt *n* is ``min(cap_s, base_s * 2**(n-1))`` scaled by
a *deterministic* jitter in ``[0.5, 1.5)`` derived from
``sha256(site, n)`` — repeated runs back off identically (no RNG
state, nothing to seed), while distinct sites still decorrelate.

Every performed retry increments ``repro_retries_total{site=...}``
and records a ``retry`` trace event carrying the attempt number and
the swallowed error, so a chaos run's recovery work is visible in
``/metrics`` and the span trace.
"""

from __future__ import annotations

import dataclasses
import hashlib
import time
from typing import Any, Callable, TypeVar

from repro.errors import ChaosError
from repro.obs.metrics import get_registry
from repro.obs.trace import record_event

__all__ = ["RetryPolicy", "DEFAULT_RETRY", "backoff_s", "retry_call"]

T = TypeVar("T")


def _retry_counter(site: str):
    """Get-or-create survives registry resets between tests."""
    return get_registry().counter(
        "repro_retries_total",
        "Transient failures retried, by site.",
        labels={"site": site})


@dataclasses.dataclass(frozen=True)
class RetryPolicy:
    """Budget and backoff shape for one class of transient failures."""

    #: Total tries (first call included); the last failure propagates.
    attempts: int = 4
    #: Backoff before the second try (doubles per attempt).
    base_s: float = 0.01
    #: Backoff ceiling.
    cap_s: float = 1.0
    #: Exception types worth retrying.
    retry_on: tuple[type[BaseException], ...] = (OSError,)
    #: Exception types that bypass the budget entirely (e.g. a
    #: heartbeat's ``FileNotFoundError`` means *revoked*, not flaky).
    giveup_on: tuple[type[BaseException], ...] = ()

    def __post_init__(self) -> None:
        if self.attempts < 1:
            raise ChaosError("retry attempts must be >= 1")
        if self.base_s < 0 or self.cap_s < 0:
            raise ChaosError("retry backoff must be >= 0")


DEFAULT_RETRY = RetryPolicy()


def backoff_s(policy: RetryPolicy, attempt: int, site: str = "") -> float:
    """Sleep before retry ``attempt`` (1-based), jitter included."""
    raw = min(policy.cap_s, policy.base_s * (2 ** (attempt - 1)))
    digest = hashlib.sha256(f"{site}:{attempt}".encode()).digest()
    fraction = int.from_bytes(digest[:4], "big") / 2 ** 32
    return raw * (0.5 + fraction)


def retry_call(fn: Callable[[], T], *, site: str,
               policy: RetryPolicy = DEFAULT_RETRY,
               sleep: Callable[[float], Any] = time.sleep) -> T:
    """Call ``fn`` under ``policy``; the final failure propagates.

    ``site`` labels the metrics/trace emissions and decorrelates the
    jitter; ``sleep`` is injectable for tests.
    """
    for attempt in range(1, policy.attempts + 1):
        try:
            return fn()
        except policy.giveup_on:
            raise
        except policy.retry_on as exc:
            if attempt >= policy.attempts:
                raise
            _retry_counter(site).inc()
            record_event("retry", 0.0, site=site, attempt=attempt,
                         error=f"{type(exc).__name__}: {exc}")
            sleep(backoff_s(policy, attempt, site))
    raise AssertionError("unreachable")  # pragma: no cover
