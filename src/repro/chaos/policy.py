"""Seeded, deterministic fault injection behind named sites.

A :class:`ChaosPolicy` maps *injection sites* — fixed names threaded
through the campaign stack's hot paths (:data:`SITES`) — to firing
rates, under one seed.  Each site draws from its own
:class:`random.Random` stream seeded by ``hash(seed, site)``, so the
injection sequence at any one site is a pure function of the policy
seed and the call sequence: the same seeded campaign replays the same
faults (the chaos differential suite pins this).

Instrumented code calls one of four primitives, every one a cheap
no-op while no policy is installed:

* :func:`point` — raise/kill/sleep sites (``eio``/``kill``/``hang``/
  ``slow`` kinds): raises a tagged ``OSError`` (``EIO`` or
  ``ENOSPC``), exits the process, or sleeps.
* :func:`fires` — a bare draw for custom actions (e.g. the service
  dropping a connection).
* :func:`mangle` — corrupt a byte payload (torn write / bit flip)
  on ``mangle`` sites.
* :func:`delay` — the seconds an async path should sleep (``slow``
  sites; asyncio code cannot use the blocking :func:`point`).

Resolution mirrors every other runtime knob (``repro.obs.trace`` is
the template): explicit :func:`enable` > session default
(``RuntimeOptions.chaos`` / ``--chaos SPEC``) > ``$REPRO_CHAOS`` >
off; an empty string at any level pins chaos off.
:func:`sync_from_session` is called by
:func:`repro.runtime.set_session_defaults`, so ``using(chaos=...)``
scopes injection like any other option.

Spec grammar (comma-separated ``key=value``)::

    seed=7,queue.*=0.2,cache.write=0.5,slow_s=0.05,hang_s=2

``seed`` seeds the per-site streams; ``slow_s``/``hang_s`` tune the
delay kinds; every other key is a site name or ``fnmatch`` pattern
(must match at least one known site) with a firing rate in ``[0, 1]``.
Later entries override earlier ones per concrete site.

Every fired injection increments
``repro_chaos_injections_total{site=...}``, records a
``chaos.inject`` trace event, and is appended to the in-process
:func:`injection_log` (capped) for the determinism pins.
"""

from __future__ import annotations

import dataclasses
import errno
import fnmatch
import hashlib
import os
import time
from random import Random
from typing import Any

from repro.errors import ChaosError
from repro.obs.metrics import get_registry
from repro.obs.trace import record_event

__all__ = [
    "SITES",
    "ChaosPolicy",
    "active_policy",
    "chaos_enabled",
    "delay",
    "disable",
    "enable",
    "fires",
    "injection_log",
    "mangle",
    "point",
    "rescope",
    "resolve_chaos",
    "sync_from_session",
]

#: Known injection sites -> failure kind.  ``eio`` sites raise a
#: tagged ``OSError`` (EIO or ENOSPC, drawn per fire); ``kill`` exits
#: the process hard (``os._exit``, no cleanup — a crash, not an
#: exception); ``hang``/``slow`` sleep; ``mangle`` corrupts bytes via
#: :func:`mangle`; ``reset`` is a bare :func:`fires` draw the caller
#: acts on.
SITES: dict[str, str] = {
    "queue.write": "eio",        # any queue-file atomic write
    "queue.rename": "eio",       # claim-by-rename
    "queue.heartbeat": "eio",    # lease utime
    "queue.requeue": "eio",      # expired-lease scavenging rename
    "cache.read": "mangle",      # artefact read corruption
    "cache.write": "mangle",     # torn/corrupt artefact write
    "manifest.write": "eio",     # manifest rewrite
    "pool.task.kill": "kill",    # pool worker dies mid-task
    "pool.task.hang": "hang",    # pool worker wedges mid-task
    "pool.task.slow": "slow",    # pool task straggler
    "worker.kill": "kill",       # queue worker dies mid-lease
    "service.reset": "reset",    # connection dropped, no response
    "service.slow": "slow",      # slow client/handler
}

_KNOBS = ("seed", "slow_s", "hang_s")

#: Exit code of a chaos ``kill`` (mirrors SIGKILL's 128+9 so crash
#: handling cannot tell an injected death from a real one).
KILL_EXIT_CODE = 137

_LOG_CAP = 10_000


def _site_seed(seed: int, site: str) -> int:
    digest = hashlib.sha256(f"{seed}:{site}".encode()).digest()
    return int.from_bytes(digest[:8], "big")


@dataclasses.dataclass(frozen=True)
class ChaosPolicy:
    """One seeded fault-injection configuration (validated, frozen)."""

    seed: int = 0
    #: ``(site, rate)`` pairs over concrete :data:`SITES` names.
    rates: tuple[tuple[str, float], ...] = ()
    #: Sleep injected by ``slow`` sites (seconds).
    slow_s: float = 0.05
    #: Sleep injected by ``hang`` sites (seconds; long enough to blow
    #: a lease TTL, short enough to not wedge a test suite forever).
    hang_s: float = 30.0

    def __post_init__(self) -> None:
        for site, rate in self.rates:
            if site not in SITES:
                raise ChaosError(
                    f"unknown chaos site {site!r}; known: "
                    f"{', '.join(sorted(SITES))}")
            if not 0.0 <= rate <= 1.0:
                raise ChaosError(
                    f"chaos rate for {site!r} must be in [0, 1], "
                    f"got {rate}")
        if self.slow_s < 0:
            raise ChaosError("slow_s must be >= 0")
        if self.hang_s < 0:
            raise ChaosError("hang_s must be >= 0")

    @classmethod
    def parse(cls, spec: str) -> "ChaosPolicy":
        """Parse the ``--chaos`` spec grammar (see module docstring)."""
        knobs: dict[str, Any] = {}
        rates: dict[str, float] = {}
        if not spec.strip():
            raise ChaosError(
                "empty chaos spec (use e.g. 'seed=7,queue.*=0.2'; "
                "an empty string at the option level pins chaos off)")
        for token in spec.split(","):
            token = token.strip()
            if not token:
                continue
            key, sep, value = token.partition("=")
            key = key.strip()
            value = value.strip()
            if not sep or not key or not value:
                raise ChaosError(
                    f"malformed chaos spec entry {token!r} "
                    f"(expected key=value)")
            if key in _KNOBS:
                try:
                    knobs[key] = int(value) if key == "seed" \
                        else float(value)
                except ValueError:
                    raise ChaosError(
                        f"chaos {key} must be a number, "
                        f"got {value!r}") from None
                continue
            try:
                rate = float(value)
            except ValueError:
                raise ChaosError(
                    f"chaos rate for {key!r} must be a number, "
                    f"got {value!r}") from None
            matched = fnmatch.filter(SITES, key)
            if not matched:
                raise ChaosError(
                    f"chaos site pattern {key!r} matches no known "
                    f"site; known: {', '.join(sorted(SITES))}")
            for site in matched:
                rates[site] = rate
        return cls(rates=tuple(sorted(rates.items())), **knobs)

    def rate(self, site: str) -> float:
        """The firing rate configured for ``site`` (0 when absent)."""
        return dict(self.rates).get(site, 0.0)

    def to_spec(self) -> str:
        """The policy as a spec string (round-trips through
        :meth:`parse`; how a policy ships to child processes via
        ``$REPRO_CHAOS``)."""
        parts = [f"seed={self.seed}"]
        parts.extend(f"{site}={rate}" for site, rate in self.rates)
        parts.append(f"slow_s={self.slow_s}")
        parts.append(f"hang_s={self.hang_s}")
        return ",".join(parts)


# ---------------------------------------------------------------------- #
# active policy state
# ---------------------------------------------------------------------- #

_policy: ChaosPolicy | None = None
_spec: str | None = None
_rates: dict[str, float] = {}
_streams: dict[str, Random] = {}
_managed = False  # installed by sync_from_session (vs. enable())
_log: list[tuple[str, str]] = []


def chaos_enabled() -> bool:
    """Whether a fault-injection policy is installed."""
    return _policy is not None


def active_policy() -> ChaosPolicy | None:
    """The installed policy, or ``None`` when chaos is off."""
    return _policy


def injection_log() -> list[tuple[str, str]]:
    """``(site, action)`` pairs of every fault fired since
    :func:`enable` (capped at ``_LOG_CAP``; the determinism pins
    compare these across same-seed runs)."""
    return list(_log)


def enable(policy: ChaosPolicy | str) -> ChaosPolicy:
    """Install ``policy`` (or parse a spec string) and reset the
    per-site streams and the injection log."""
    global _policy, _spec, _rates, _streams, _managed
    spec = None
    if isinstance(policy, str):
        spec = policy
        policy = ChaosPolicy.parse(policy)
    _policy = policy
    _spec = spec
    _rates = dict(policy.rates)
    _streams = {site: Random(_site_seed(policy.seed, site))
                for site, rate in policy.rates if rate > 0}
    _managed = False
    _log.clear()
    return policy


def rescope(scope: str) -> None:
    """Re-derive every per-site stream under ``scope``.

    Forked pool/queue workers inherit the parent's stream *state*
    copy-on-write, so without rescoping every fresh worker would make
    the identical draw sequence — a fired first draw would then kill
    each respawned worker in turn, deterministically crash-looping the
    pool.  Mixing a per-worker scope (its deterministic name) into the
    stream seeds keeps runs reproducible while decorrelating workers.
    No-op when chaos is off.
    """
    global _streams
    if _policy is None:
        return
    _streams = {site: Random(_site_seed(_policy.seed, f"{scope}:{site}"))
                for site, rate in _policy.rates if rate > 0}


def disable() -> None:
    """Remove the installed policy; every primitive becomes a no-op."""
    global _policy, _spec, _rates, _streams, _managed
    _policy = None
    _spec = None
    _rates = {}
    _streams = {}
    _managed = False
    _log.clear()


def resolve_chaos(chaos: str | None = None) -> str | None:
    """The effective chaos spec for one invocation.

    Resolution: ``chaos`` argument > session default
    (:func:`repro.runtime.session_defaults`) > ``$REPRO_CHAOS`` > off.
    An empty string at any level pins chaos off.  Returns the spec
    string or ``None``.
    """
    if chaos is not None:
        return chaos or None
    from repro import runtime
    session = runtime.session_defaults().chaos
    if session is not None:
        return session or None
    return os.environ.get("REPRO_CHAOS") or None


def sync_from_session() -> None:
    """Align the installed policy with the resolved session knob.

    Called by :func:`repro.runtime.set_session_defaults` so
    ``RuntimeOptions(chaos=...)`` installs and removes the policy like
    any other runtime knob.  Re-syncing an unchanged spec is a no-op
    (the per-site streams are *not* reset mid-run — determinism), and
    only a policy the session itself installed is removed here — an
    explicit :func:`enable` survives unrelated session resets.
    """
    global _managed
    spec = resolve_chaos()
    if spec:
        if _managed and _policy is not None and _spec == spec:
            return
        enable(spec)
        _managed = True
    elif _policy is not None and _managed:
        disable()


# ---------------------------------------------------------------------- #
# injection primitives
# ---------------------------------------------------------------------- #


def _chaos_counter(site: str):
    """Get-or-create survives registry resets between tests."""
    return get_registry().counter(
        "repro_chaos_injections_total",
        "Chaos faults injected, by site.",
        labels={"site": site})


def _kind(site: str) -> str:
    try:
        return SITES[site]
    except KeyError:
        raise ChaosError(
            f"unknown chaos site {site!r}; known: "
            f"{', '.join(sorted(SITES))}") from None


def _draw(site: str) -> Random | None:
    """The site's stream when this call fires, else ``None``."""
    rate = _rates.get(site, 0.0)
    if rate <= 0.0:
        return None
    stream = _streams[site]
    return stream if stream.random() < rate else None


def _fired(site: str, action: str) -> None:
    _chaos_counter(site).inc()
    record_event("chaos.inject", 0.0, site=site, action=action)
    if len(_log) < _LOG_CAP:
        _log.append((site, action))


def point(site: str) -> None:
    """One raise/kill/sleep injection site (no-op when disabled).

    ``eio`` sites raise ``OSError`` (errno ``EIO`` or ``ENOSPC``,
    drawn from the site stream, message tagged ``chaos[<site>]``);
    ``kill`` sites ``os._exit`` the process; ``hang``/``slow`` sites
    sleep the policy's ``hang_s``/``slow_s``.
    """
    if _policy is None:
        return
    kind = _kind(site)
    stream = _draw(site)
    if stream is None:
        return
    if kind == "eio":
        code = errno.EIO if stream.random() < 0.5 else errno.ENOSPC
        _fired(site, errno.errorcode[code])
        raise OSError(
            code, f"chaos[{site}]: injected {errno.errorcode[code]}")
    if kind == "kill":
        _fired(site, "kill")
        os._exit(KILL_EXIT_CODE)
    if kind == "hang":
        _fired(site, "hang")
        time.sleep(_policy.hang_s)
        return
    if kind == "slow":
        _fired(site, "slow")
        time.sleep(_policy.slow_s)
        return
    raise ChaosError(
        f"site {site!r} is a {kind!r} site; use "
        f"{'mangle()' if kind == 'mangle' else 'fires()'} there")


def fires(site: str) -> bool:
    """Whether a custom-action site fires this call (accounted)."""
    if _policy is None:
        return False
    _kind(site)
    if _draw(site) is None:
        return False
    _fired(site, "fire")
    return True


def mangle(site: str, data: bytes) -> bytes:
    """``data``, corrupted when a ``mangle`` site fires.

    Two corruption modes, drawn from the site stream: *torn* —
    truncate at a random offset (the tail of an interrupted write) —
    or *flip* — one byte xor-ed (rot on disk / a bad read).
    """
    if _policy is None or not data:
        return data
    kind = _kind(site)
    if kind != "mangle":
        raise ChaosError(f"site {site!r} is a {kind!r} site, "
                         f"not a mangle site")
    stream = _draw(site)
    if stream is None:
        return data
    if stream.random() < 0.5:
        _fired(site, "torn")
        return data[:stream.randrange(len(data))]
    _fired(site, "flip")
    pos = stream.randrange(len(data))
    corrupted = bytearray(data)
    corrupted[pos] ^= 0xFF
    return bytes(corrupted)


def delay(site: str) -> float:
    """Seconds an async caller should sleep (``slow`` sites only).

    The asyncio service cannot call the blocking :func:`point`; it
    awaits ``asyncio.sleep(chaos.delay("service.slow"))`` instead.
    """
    if _policy is None:
        return 0.0
    kind = _kind(site)
    if kind != "slow":
        raise ChaosError(f"site {site!r} is a {kind!r} site, "
                         f"not a slow site")
    if _draw(site) is None:
        return 0.0
    _fired(site, "slow")
    return _policy.slow_s
