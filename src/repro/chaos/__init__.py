"""Deterministic fault injection + the resilience helpers it proves.

``repro.chaos`` has two halves that meet in the campaign stack:

* :mod:`repro.chaos.policy` — seeded fault *injection*: a
  :class:`ChaosPolicy` (per-site rates, one seed, per-site RNG
  streams) behind named sites threaded through the queue, cache,
  manifest, pool and service hot paths.  Every primitive is a no-op
  while no policy is installed (bench-gated, like tracing).
* :mod:`repro.chaos.retry` — the shared *resilience* helper: capped
  exponential backoff with deterministic jitter and per-site budgets,
  adopted by the queue's transactional writes, cache I/O and manifest
  rewrites.

The point of keeping them in one package: the injection layer is how
the retry/respawn/quarantine machinery is *proved* — the chaos
differential suite runs a multi-worker campaign under aggressive
injection and pins that the surviving cache/manifest artefacts are
bit-identical to a clean run.
"""

from repro.chaos.policy import (
    KILL_EXIT_CODE,
    SITES,
    ChaosPolicy,
    active_policy,
    chaos_enabled,
    delay,
    disable,
    enable,
    fires,
    injection_log,
    mangle,
    point,
    rescope,
    resolve_chaos,
    sync_from_session,
)
from repro.chaos.retry import (
    DEFAULT_RETRY,
    RetryPolicy,
    backoff_s,
    retry_call,
)

__all__ = [
    "KILL_EXIT_CODE",
    "SITES",
    "ChaosPolicy",
    "DEFAULT_RETRY",
    "RetryPolicy",
    "active_policy",
    "backoff_s",
    "chaos_enabled",
    "delay",
    "disable",
    "enable",
    "fires",
    "injection_log",
    "mangle",
    "point",
    "rescope",
    "resolve_chaos",
    "retry_call",
    "sync_from_session",
]
