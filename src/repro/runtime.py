"""Unified runtime-options surface: one session-default store.

Six PRs grew six runtime knobs — simulation backend, fault backend,
shard count, episode batching, fault planning and the streaming
budget — each with its own session setter
(``set_default_backend``, ``set_default_episode_batching``,
``set_default_fault_planning``, ``set_default_stream_budget``) plus an
environment variable.  Every knob is *runtime-only*: it changes speed
or peak memory, never results (all engines are bit-identical by
contract), so none participates in
:meth:`~repro.core.config.FlowConfig.config_hash`.

This module consolidates them into a single frozen
:class:`RuntimeOptions` record and three entry points:

* :func:`set_session_defaults` — install session defaults (wholesale
  via a :class:`RuntimeOptions`, or patch single fields via kwargs);
* :func:`session_defaults` — the currently installed options;
* :func:`using` — a context manager installing options temporarily.

The per-knob resolvers keep their documented precedence — explicit
per-call argument > session default > environment variable > built-in
default (:func:`repro.simulation.toggles.resolve_toggle` semantics) —
but all read the *session* level from the one store here, so a server
resolving per-request options, the CLI and library callers share one
surface.  The legacy per-knob setters remain as thin deprecated shims
delegating to :func:`set_session_defaults`.

Session defaults are process-global and do **not** cross process
boundaries (pool/shard workers re-resolve from their own environment,
exactly as before).
"""

from __future__ import annotations

import contextlib
import dataclasses
import warnings
from collections.abc import Iterator

from repro.errors import ConfigError

__all__ = [
    "RuntimeOptions",
    "session_defaults",
    "set_session_defaults",
    "using",
]


@dataclasses.dataclass(frozen=True)
class RuntimeOptions:
    """Session-level runtime knobs (speed/memory only, never results).

    Every field defaults to ``None`` — *defer to the environment /
    built-in default* — so an all-``None`` record is the neutral
    element and installing it resets the session.

    Attributes
    ----------
    backend:
        Packed-simulation backend name (``$REPRO_SIM_BACKEND``,
        built-in ``bigint``).
    fault_backend:
        Backend for fault simulation specifically
        (``$REPRO_FAULT_BACKEND``, else the ``backend`` chain).
    shards:
        Worker-process count for the ``sharded`` backend
        (``$REPRO_SIM_SHARDS``, else CPU count).
    episode_batch:
        Batched whole-test-set episode engine
        (``$REPRO_EPISODE_BATCH``, default on).
    fault_plan:
        Planned fault x pattern replay (``$REPRO_FAULT_PLAN``,
        default on).
    stream_budget:
        Out-of-core streaming budget in ``uint64`` elements
        (``$REPRO_STREAM_BUDGET``, default off; ``0`` pins off).
    trace:
        Span-trace output directory (``$REPRO_TRACE``, default off;
        ``""`` pins off).  When set, :mod:`repro.obs.trace` records
        every instrumented phase as JSONL span files under the
        directory; like every other knob it never changes results.
    array_namespace:
        Array namespace (importable module name) for the ``array_api``
        backend's shared kernels (``$REPRO_ARRAY_NAMESPACE``, built-in
        ``numpy``; e.g. ``cupy`` for the GPU path).  Bit-identical by
        contract — like every other knob it only changes where the
        arithmetic runs.
    chaos:
        Fault-injection spec (``$REPRO_CHAOS``, default off; ``""``
        pins off).  When set, :mod:`repro.chaos` fires seeded faults
        at the named injection sites (see the spec grammar there).
        Failures are injected *and survived* — retries, respawns and
        re-queues converge on results bit-identical to a clean run —
        so like every other knob it never changes results; unlike the
        others it deliberately changes how often the recovery paths
        run.
    """

    backend: str | None = None
    fault_backend: str | None = None
    shards: int | None = None
    episode_batch: bool | None = None
    fault_plan: bool | None = None
    stream_budget: int | None = None
    trace: str | None = None
    array_namespace: str | None = None
    chaos: str | None = None

    def __post_init__(self) -> None:
        # Validate eagerly, mirroring FlowConfig: a bad session default
        # must fail at install time, not deep inside a flow.  (The
        # backends import stays conditional so the neutral all-``None``
        # record constructed at module import never recurses into the
        # backend registry.)
        if self.backend is not None or self.fault_backend is not None:
            from repro.simulation.backends import available_backends
            for which, name in (("simulation", self.backend),
                                ("fault simulation", self.fault_backend)):
                if name is not None and name not in available_backends():
                    raise ConfigError(
                        f"unknown {which} backend {name!r}; "
                        f"available: {', '.join(available_backends())}")
        if self.shards is not None:
            if self.shards < 1:
                raise ConfigError("shards must be >= 1")
            if self.fault_backend not in (None, "sharded"):
                raise ConfigError(
                    "shards only applies to the 'sharded' fault "
                    f"backend, not {self.fault_backend!r}")
        if self.stream_budget is not None and self.stream_budget < 0:
            raise ConfigError("stream_budget must be >= 0")
        if self.array_namespace is not None:
            if not self.array_namespace:
                raise ConfigError("array_namespace must be a non-empty "
                                  "module name")
            import importlib.util
            try:
                spec = importlib.util.find_spec(self.array_namespace)
            except (ImportError, ValueError):
                spec = None
            if spec is None:
                raise ConfigError(
                    f"array namespace {self.array_namespace!r} is not "
                    f"importable")
        if self.chaos:
            # Parse eagerly: a bad --chaos spec must fail at install
            # time, not at the first injection site deep in a worker.
            from repro.chaos import ChaosPolicy
            ChaosPolicy.parse(self.chaos)

    def replace(self, **changes) -> "RuntimeOptions":
        """A copy with ``changes`` applied (validated)."""
        return dataclasses.replace(self, **changes)

    def to_flow_kwargs(self) -> dict:
        """The non-``None`` fields as :class:`FlowConfig` kwargs.

        Campaign/server code folds the session options into a per-job
        config in one call.  Fields that are session-scoped only
        (``chaos`` — injection is ambient process state, not a per-job
        knob) are filtered out by introspecting ``FlowConfig``.
        """
        from repro.core.config import FlowConfig
        known = {field.name for field in dataclasses.fields(FlowConfig)}
        return {field.name: getattr(self, field.name)
                for field in dataclasses.fields(self)
                if field.name in known
                and getattr(self, field.name) is not None}


#: The installed session defaults (all-``None`` = neutral).
_session = RuntimeOptions()


def session_defaults() -> RuntimeOptions:
    """The currently installed session-default options."""
    return _session


def set_session_defaults(options: RuntimeOptions | None = None,
                         **kwargs) -> RuntimeOptions:
    """Install session-default runtime options; returns the result.

    ``set_session_defaults(options)`` installs ``options`` wholesale
    (an all-``None`` :class:`RuntimeOptions` — or plain
    ``set_session_defaults()`` — resets the session).  Keyword form
    ``set_session_defaults(episode_batch=False)`` patches only the
    named fields of the current session.  Mixing both applies the
    kwargs on top of ``options``.
    """
    global _session
    base = options if options is not None else \
        (_session if kwargs else RuntimeOptions())
    _session = base.replace(**kwargs) if kwargs else base
    # The trace and chaos knobs drive process-wide state, not a
    # per-call resolver — align them with the new session immediately
    # so ``using(trace=...)`` / ``using(chaos=...)`` scope like any
    # other knob.
    from repro.obs import trace as obs_trace
    obs_trace.sync_from_session()
    import repro.chaos as chaos
    chaos.sync_from_session()
    return _session


@contextlib.contextmanager
def using(options: RuntimeOptions | None = None,
          **kwargs) -> Iterator[RuntimeOptions]:
    """Temporarily install session defaults (restored on exit).

    ::

        with using(backend="numpy", stream_budget=1 << 20):
            run_table1(...)
    """
    previous = _session
    try:
        yield set_session_defaults(options, **kwargs)
    finally:
        set_session_defaults(previous)


def _deprecated_setter(name: str, field: str, value) -> None:
    """Shared body of the legacy per-knob session setters."""
    warnings.warn(
        f"{name}() is deprecated; use repro.runtime."
        f"set_session_defaults({field}=...)",
        DeprecationWarning, stacklevel=3)
    set_session_defaults(**{field: value})
