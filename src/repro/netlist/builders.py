"""Programmatic circuit builders: reference circuits used in tests,
examples and documentation.

``s27()`` is the real ISCAS89 s27 netlist (the smallest published
benchmark), embedded verbatim.  The toy circuits exercise specific
structural shapes (reconvergence, transparent chains, wide gates).
"""

from __future__ import annotations

from repro.netlist.bench import parse_bench
from repro.netlist.circuit import Circuit
from repro.netlist.gates import GateType

__all__ = ["s27", "c17", "toy_scan_circuit", "chain_of_inverters",
           "wide_gate_circuit", "reconvergent_circuit"]

_S27_BENCH = """
# s27 — ISCAS89 benchmark (4 inputs, 1 output, 3 DFFs, 10 gates)
INPUT(G0)
INPUT(G1)
INPUT(G2)
INPUT(G3)

OUTPUT(G17)

G5 = DFF(G10)
G6 = DFF(G11)
G7 = DFF(G13)

G14 = NOT(G0)
G17 = NOT(G11)
G8 = AND(G14, G6)
G15 = OR(G12, G8)
G16 = OR(G3, G8)
G9 = NAND(G16, G15)
G10 = NOR(G14, G11)
G11 = NOR(G5, G9)
G12 = NOR(G1, G7)
G13 = NOR(G2, G12)
"""

_C17_BENCH = """
# c17 — ISCAS85 benchmark (combinational; 5 inputs, 2 outputs, 6 NAND)
INPUT(G1)
INPUT(G2)
INPUT(G3)
INPUT(G6)
INPUT(G7)

OUTPUT(G22)
OUTPUT(G23)

G10 = NAND(G1, G3)
G11 = NAND(G3, G6)
G16 = NAND(G2, G11)
G19 = NAND(G11, G7)
G22 = NAND(G10, G16)
G23 = NAND(G16, G19)
"""


def s27() -> Circuit:
    """The real ISCAS89 s27 benchmark circuit."""
    return parse_bench(_S27_BENCH, "s27")


def c17() -> Circuit:
    """The real ISCAS85 c17 benchmark circuit (pure combinational)."""
    return parse_bench(_C17_BENCH, "c17")


def toy_scan_circuit() -> Circuit:
    """A 6-flop, 3-PI circuit crafted for scan-power unit tests.

    Structure highlights: two flops feed logic through blockable NAND/NOR
    gates, one flop feeds an XOR (unblockable — transitions always pass),
    and one flop output goes straight to a primary output.
    """
    c = Circuit("toy_scan")
    for pi in ("a", "b", "c"):
        c.add_input(pi)
    # state elements q0..q5, next-state logic defined below
    for i in range(6):
        c.add_gate(f"q{i}", GateType.DFF, (f"d{i}",))
    c.add_gate("n1", GateType.NAND, ("a", "q0"))
    c.add_gate("n2", GateType.NOR, ("b", "q1"))
    c.add_gate("n3", GateType.XOR, ("q2", "c"))
    c.add_gate("n4", GateType.NAND, ("n1", "n2"))
    c.add_gate("n5", GateType.AND, ("n3", "q3"))
    c.add_gate("n6", GateType.OR, ("n4", "n5"))
    c.add_gate("n7", GateType.NOT, ("q4",))
    c.add_gate("d0", GateType.NAND, ("n6", "n7"))
    c.add_gate("d1", GateType.NOR, ("n6", "q5"))
    c.add_gate("d2", GateType.BUFF, ("n4",))
    c.add_gate("d3", GateType.NOT, ("n5",))
    c.add_gate("d4", GateType.AND, ("n1", "n3"))
    c.add_gate("d5", GateType.OR, ("n2", "n7"))
    c.add_output("n6")
    c.add_output("q5")
    c.validate()
    return c


def chain_of_inverters(length: int, name: str = "inv_chain") -> Circuit:
    """A single-input inverter chain of ``length`` stages (timing tests)."""
    if length < 1:
        raise ValueError("length must be >= 1")
    c = Circuit(name)
    c.add_input("in")
    prev = "in"
    for i in range(length):
        out = f"s{i}"
        c.add_gate(out, GateType.NOT, (prev,))
        prev = out
    c.add_output(prev)
    c.validate()
    return c


def wide_gate_circuit(width: int, name: str = "wide") -> Circuit:
    """One ``width``-input NAND and one NOR over shared inputs (mapping
    tests for wide-gate tree decomposition)."""
    if width < 2:
        raise ValueError("width must be >= 2")
    c = Circuit(name)
    pis = [c.add_input(f"i{k}") for k in range(width)]
    c.add_gate("wnand", GateType.NAND, pis)
    c.add_gate("wnor", GateType.NOR, pis)
    c.add_output("wnand")
    c.add_output("wnor")
    c.validate()
    return c


def reconvergent_circuit(name: str = "reconv") -> Circuit:
    """Classic reconvergent-fanout shape (stresses observability and ATPG).

    ``a`` fans out to two paths with different parities that reconverge on
    an XOR — a static-hazard-style topology.
    """
    c = Circuit(name)
    c.add_input("a")
    c.add_input("b")
    c.add_gate("p", GateType.NOT, ("a",))
    c.add_gate("u", GateType.AND, ("a", "b"))
    c.add_gate("v", GateType.OR, ("p", "b"))
    c.add_gate("y", GateType.XOR, ("u", "v"))
    c.add_output("y")
    c.validate()
    return c
