"""Gate-level circuit data structure.

A :class:`Circuit` is a named collection of *lines* (nets) and *gates*.
Each gate drives exactly one line (its ``output``); a line is driven either
by a gate or by being a primary input.  D flip-flops are gates of type
``DFF`` whose output line is the flop's Q and whose single input line is
its D — this matches the ISCAS89 ``.bench`` view of sequential circuits.

The class maintains fanout maps and a cached topological order of the
combinational gates (DFFs excluded), both invalidated on mutation.
"""

from __future__ import annotations

import dataclasses
from collections.abc import Iterable, Iterator

import networkx as nx

from repro.errors import NetlistError
from repro.netlist.gates import (
    GateType,
    SEQUENTIAL_TYPES,
    check_arity,
)
from repro.utils.topo import topological_order
from repro.utils.validation import check_name

__all__ = ["Gate", "Circuit"]


@dataclasses.dataclass(frozen=True)
class Gate:
    """One gate instance: ``output = gtype(inputs...)``.

    Immutable; circuit edits replace Gate objects rather than mutating them.
    """

    output: str
    gtype: GateType
    inputs: tuple[str, ...]

    def __post_init__(self) -> None:
        check_name(self.output, "gate output")
        for name in self.inputs:
            check_name(name, "gate input")
        check_arity(self.gtype, len(self.inputs))

    def __str__(self) -> str:
        return f"{self.output} = {self.gtype}({', '.join(self.inputs)})"


class Circuit:
    """A gate-level netlist with primary inputs, outputs and DFF state.

    Construction is incremental (:meth:`add_input`, :meth:`add_gate`,
    :meth:`add_output`); :meth:`validate` checks global consistency.
    All structural queries (fanouts, topological order, levels) are cached
    and recomputed lazily after mutations.
    """

    def __init__(self, name: str = "circuit"):
        self.name = name
        self._inputs: list[str] = []
        self._outputs: list[str] = []
        self._gates: dict[str, Gate] = {}
        self._input_set: set[str] = set()
        self._dirty = True
        self._version = 0
        self._fingerprint: tuple[int, str] | None = None
        self._fanouts: dict[str, list[tuple[str, int]]] = {}
        self._topo: list[str] = []
        self._levels: dict[str, int] = {}

    def _touch(self) -> None:
        """Mark derived structure stale and advance the structure version."""
        self._dirty = True
        self._version += 1

    @property
    def version(self) -> int:
        """Monotonic structure version, bumped on every mutation.

        External caches keyed on the circuit object (e.g. the levelized
        simulation schedules) use this to detect staleness.
        """
        return self._version

    def fingerprint(self) -> str:
        """Process-independent content digest of the netlist.

        Covers the name, PI/PO declarations and every gate (output,
        type, input tuple) in insertion order — everything a simulation
        result can depend on.  Unlike :attr:`version` (an in-process
        mutation counter) the fingerprint is identical for structurally
        identical circuits built in different processes, so the
        campaign result cache keys artefacts on it.  Memoized per
        :attr:`version`.
        """
        if self._fingerprint is not None \
                and self._fingerprint[0] == self._version:
            return self._fingerprint[1]
        import hashlib
        parts = [self.name, "|", ",".join(self._inputs), "|",
                 ",".join(self._outputs), "|"]
        for gate in self._gates.values():
            parts.append(
                f"{gate.output}={gate.gtype.value}"
                f"({','.join(gate.inputs)});")
        digest = hashlib.sha256("".join(parts).encode()).hexdigest()
        self._fingerprint = (self._version, digest)
        return digest

    # ------------------------------------------------------------------ #
    # basic accessors
    # ------------------------------------------------------------------ #

    @property
    def inputs(self) -> tuple[str, ...]:
        """Primary input line names, in declaration order."""
        return tuple(self._inputs)

    @property
    def outputs(self) -> tuple[str, ...]:
        """Primary output line names, in declaration order."""
        return tuple(self._outputs)

    @property
    def gates(self) -> dict[str, Gate]:
        """Mapping from driven line name to its :class:`Gate` (read-only view).

        Mutate through :meth:`add_gate` / :meth:`remove_gate` /
        :meth:`replace_gate`, never through this dict.
        """
        return self._gates

    def gate(self, line: str) -> Gate:
        """The gate driving ``line`` (raises ``KeyError`` for PIs/undriven)."""
        return self._gates[line]

    def is_input(self, line: str) -> bool:
        """True if ``line`` is a primary input."""
        return line in self._input_set

    def is_output(self, line: str) -> bool:
        """True if ``line`` is declared as a primary output."""
        return line in set(self._outputs)

    def has_line(self, line: str) -> bool:
        """True if ``line`` exists (as a PI or as a gate output)."""
        return line in self._input_set or line in self._gates

    def lines(self) -> Iterator[str]:
        """All line names: primary inputs first, then gate outputs."""
        yield from self._inputs
        yield from self._gates

    @property
    def dff_gates(self) -> list[Gate]:
        """All DFF gates (state elements), in insertion order."""
        return [g for g in self._gates.values()
                if g.gtype in SEQUENTIAL_TYPES]

    @property
    def dff_outputs(self) -> list[str]:
        """Q lines of all flops — the pseudo-inputs of the test view."""
        return [g.output for g in self.dff_gates]

    def combinational_gates(self) -> list[Gate]:
        """All non-DFF gates, in insertion order."""
        return [g for g in self._gates.values()
                if g.gtype not in SEQUENTIAL_TYPES]

    def __len__(self) -> int:
        return len(self._gates)

    def __repr__(self) -> str:
        return (f"Circuit({self.name!r}: {len(self._inputs)} PI, "
                f"{len(self._outputs)} PO, {len(self.dff_gates)} DFF, "
                f"{len(self._gates) - len(self.dff_gates)} comb. gates)")

    # ------------------------------------------------------------------ #
    # mutation
    # ------------------------------------------------------------------ #

    def add_input(self, name: str) -> str:
        """Declare a primary input line."""
        check_name(name)
        if name in self._input_set:
            raise NetlistError(f"duplicate primary input {name!r}")
        if name in self._gates:
            raise NetlistError(f"line {name!r} is already driven by a gate")
        self._inputs.append(name)
        self._input_set.add(name)
        self._touch()
        return name

    def add_output(self, name: str) -> str:
        """Declare an existing-or-future line as a primary output."""
        check_name(name)
        if name in self._outputs:
            raise NetlistError(f"duplicate primary output {name!r}")
        self._outputs.append(name)
        self._touch()
        return name

    def add_gate(self, output: str, gtype: GateType,
                 inputs: Iterable[str]) -> Gate:
        """Add a gate driving ``output``; returns the new :class:`Gate`."""
        gate = Gate(output, gtype, tuple(inputs))
        if gate.output in self._input_set:
            raise NetlistError(
                f"line {gate.output!r} is a primary input, cannot be driven")
        if gate.output in self._gates:
            raise NetlistError(f"line {gate.output!r} already driven")
        self._gates[gate.output] = gate
        self._touch()
        return gate

    def remove_gate(self, output: str) -> Gate:
        """Remove the gate driving ``output``; returns the removed gate.

        The line disappears; the caller is responsible for any dangling
        references (checked by :meth:`validate`).
        """
        try:
            gate = self._gates.pop(output)
        except KeyError:
            raise NetlistError(f"no gate drives line {output!r}") from None
        self._touch()
        return gate

    def replace_gate(self, output: str, gtype: GateType,
                     inputs: Iterable[str]) -> Gate:
        """Replace the gate driving ``output`` in place (keeps order)."""
        if output not in self._gates:
            raise NetlistError(f"no gate drives line {output!r}")
        gate = Gate(output, gtype, tuple(inputs))
        self._gates[output] = gate
        self._touch()
        return gate

    def rename_line(self, old: str, new: str) -> None:
        """Rename a line everywhere (driver, fanins, PI/PO declarations)."""
        check_name(new)
        if not self.has_line(old):
            raise NetlistError(f"unknown line {old!r}")
        if self.has_line(new):
            raise NetlistError(f"line {new!r} already exists")
        if old in self._input_set:
            self._input_set.remove(old)
            self._input_set.add(new)
            self._inputs[self._inputs.index(old)] = new
        if old in self._gates:
            gate = self._gates.pop(old)
            self._gates[new] = Gate(new, gate.gtype, gate.inputs)
            # preserve iteration order as best we can: dict re-insertion puts
            # the renamed gate last, which is harmless (order is cosmetic).
        self._outputs = [new if o == old else o for o in self._outputs]
        for out, gate in list(self._gates.items()):
            if old in gate.inputs:
                new_inputs = tuple(new if i == old else i
                                   for i in gate.inputs)
                self._gates[out] = Gate(out, gate.gtype, new_inputs)
        self._touch()

    # ------------------------------------------------------------------ #
    # derived structure (cached)
    # ------------------------------------------------------------------ #

    def _refresh(self) -> None:
        if not self._dirty:
            return
        fanouts: dict[str, list[tuple[str, int]]] = {
            line: [] for line in self.lines()}
        for gate in self._gates.values():
            for pin, src in enumerate(gate.inputs):
                if src not in fanouts:
                    fanouts[src] = []
                fanouts[src].append((gate.output, pin))
        self._fanouts = fanouts

        comb = [g.output for g in self._gates.values()
                if g.gtype not in SEQUENTIAL_TYPES]

        def preds(line: str) -> tuple[str, ...]:
            return self._gates[line].inputs

        self._topo = topological_order(comb, preds)

        levels: dict[str, int] = {}
        for pi in self._inputs:
            levels[pi] = 0
        for q in self.dff_outputs:
            levels[q] = 0
        for line in self._topo:
            gate = self._gates[line]
            levels[line] = 1 + max(
                (levels.get(src, 0) for src in gate.inputs), default=0)
        self._levels = levels
        self._dirty = False

    def fanout(self, line: str) -> list[tuple[str, int]]:
        """List of ``(sink_gate_output, pin_index)`` pairs fed by ``line``."""
        self._refresh()
        return self._fanouts.get(line, [])

    def fanout_count(self, line: str) -> int:
        """Number of gate input pins driven by ``line``."""
        return len(self.fanout(line))

    def topo_order(self) -> list[str]:
        """Combinational gate outputs in topological (fanin-first) order.

        DFF gates are excluded; their Q lines act as sources (level 0).
        Raises :class:`CombinationalLoopError` on cyclic combinational logic.
        """
        self._refresh()
        return list(self._topo)

    def level_of(self, line: str) -> int:
        """Logic level of ``line`` (0 for PIs and DFF outputs)."""
        self._refresh()
        try:
            return self._levels[line]
        except KeyError:
            raise NetlistError(f"unknown line {line!r}") from None

    def depth(self) -> int:
        """Maximum logic level over all lines (0 for an empty circuit)."""
        self._refresh()
        return max(self._levels.values(), default=0)

    # ------------------------------------------------------------------ #
    # cones
    # ------------------------------------------------------------------ #

    def fanin_cone(self, line: str) -> set[str]:
        """All lines in the transitive fanin of ``line`` (inclusive).

        DFF gates are treated as cone boundaries: the cone stops at Q lines.
        """
        seen: set[str] = set()
        stack = [line]
        while stack:
            cur = stack.pop()
            if cur in seen:
                continue
            seen.add(cur)
            gate = self._gates.get(cur)
            if gate is not None and gate.gtype not in SEQUENTIAL_TYPES:
                stack.extend(gate.inputs)
        return seen

    def fanout_cone(self, line: str) -> set[str]:
        """All lines in the transitive fanout of ``line`` (inclusive).

        Stops at DFF D pins (the flop output is not part of the cone).
        """
        self._refresh()
        seen: set[str] = set()
        stack = [line]
        while stack:
            cur = stack.pop()
            if cur in seen:
                continue
            seen.add(cur)
            for sink, _pin in self._fanouts.get(cur, []):
                if self._gates[sink].gtype not in SEQUENTIAL_TYPES:
                    stack.append(sink)
        return seen

    # ------------------------------------------------------------------ #
    # consistency / export
    # ------------------------------------------------------------------ #

    def validate(self) -> None:
        """Check global consistency; raises :class:`NetlistError` on problems.

        Checks: every gate input and every PO refers to an existing line;
        the combinational part is acyclic (via :meth:`topo_order`).
        """
        for gate in self._gates.values():
            for src in gate.inputs:
                if not self.has_line(src):
                    raise NetlistError(
                        f"gate {gate.output!r} reads undriven line {src!r}")
        for po in self._outputs:
            if not self.has_line(po):
                raise NetlistError(f"primary output {po!r} is undriven")
        self.topo_order()

    def copy(self, name: str | None = None) -> "Circuit":
        """Deep-enough copy (Gate objects are immutable and shared)."""
        clone = Circuit(name if name is not None else self.name)
        clone._inputs = list(self._inputs)
        clone._input_set = set(self._input_set)
        clone._outputs = list(self._outputs)
        clone._gates = dict(self._gates)
        clone._dirty = True
        return clone

    def to_networkx(self) -> nx.DiGraph:
        """Export as a :class:`networkx.DiGraph` (nodes = lines).

        Node attributes: ``kind`` in {"input", "gate", "dff"}, and ``gtype``
        for driven lines.  Edge ``(u, v)`` means line ``u`` feeds the gate
        driving line ``v``; edge attribute ``pin`` is the input position.
        """
        graph = nx.DiGraph(name=self.name)
        for pi in self._inputs:
            graph.add_node(pi, kind="input")
        for gate in self._gates.values():
            kind = "dff" if gate.gtype in SEQUENTIAL_TYPES else "gate"
            graph.add_node(gate.output, kind=kind, gtype=gate.gtype.value)
        for gate in self._gates.values():
            for pin, src in enumerate(gate.inputs):
                graph.add_edge(src, gate.output, pin=pin)
        return graph
