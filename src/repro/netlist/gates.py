"""Gate types and their logical semantics.

This module is the single source of truth for:

* which gate types exist (:class:`GateType`),
* their arity constraints,
* controlling / non-controlling values (used by the transition-blocking
  algorithm and by PODEM),
* inversion parity (used by backtrace),
* 2-valued and 3-valued (0/1/X) evaluation.

Three-valued logic uses the encoding ``0``, ``1`` and :data:`X` (= 2),
matching the packed numpy representation used by the simulators.
"""

from __future__ import annotations

import enum
from collections.abc import Sequence

from repro.errors import NetlistError

__all__ = [
    "GateType",
    "X",
    "COMBINATIONAL_TYPES",
    "SEQUENTIAL_TYPES",
    "COMMUTATIVE_TYPES",
    "TRANSPARENT_TYPES",
    "controlling_value",
    "controlled_response",
    "is_inverting",
    "check_arity",
    "eval_gate",
    "eval_gate3",
]

#: Three-valued "unknown" marker.
X = 2


class GateType(enum.Enum):
    """Every gate type understood by the library.

    ``DFF`` is the only sequential element (a positive-edge D flip-flop in
    ISCAS89 benchmarks); everything else is combinational.  ``CONST0`` /
    ``CONST1`` are zero-input tie cells used for MUX data pins tied to
    Gnd / Vcc.  ``MUX2`` is the 2:1 multiplexer inserted by the proposed
    method, with pin order ``(select, d0, d1)``.
    """

    AND = "AND"
    NAND = "NAND"
    OR = "OR"
    NOR = "NOR"
    NOT = "NOT"
    BUFF = "BUFF"
    XOR = "XOR"
    XNOR = "XNOR"
    MUX2 = "MUX2"
    CONST0 = "CONST0"
    CONST1 = "CONST1"
    DFF = "DFF"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


#: Gate types evaluated by the combinational simulators.
COMBINATIONAL_TYPES = frozenset(t for t in GateType if t is not GateType.DFF)

#: Sequential gate types (state elements replaced by scan cells).
SEQUENTIAL_TYPES = frozenset({GateType.DFF})

#: Types whose inputs may be freely permuted without changing the function.
COMMUTATIVE_TYPES = frozenset({
    GateType.AND, GateType.NAND, GateType.OR, GateType.NOR,
    GateType.XOR, GateType.XNOR,
})

#: Types through which a transition on any input always propagates
#: (no side input can block it) — the paper's Update TNS/TGS step (c)
#: lists NOT, XOR, XNOR and fanout branches.
TRANSPARENT_TYPES = frozenset({
    GateType.NOT, GateType.BUFF, GateType.XOR, GateType.XNOR,
})

_CONTROLLING = {
    GateType.AND: 0,
    GateType.NAND: 0,
    GateType.OR: 1,
    GateType.NOR: 1,
}

_CONTROLLED_RESPONSE = {
    GateType.AND: 0,
    GateType.NAND: 1,
    GateType.OR: 1,
    GateType.NOR: 0,
}

_INVERTING = frozenset({
    GateType.NAND, GateType.NOR, GateType.NOT, GateType.XNOR,
})

# (min_arity, max_arity); None means unbounded.
_ARITY = {
    GateType.AND: (2, None),
    GateType.NAND: (2, None),
    GateType.OR: (2, None),
    GateType.NOR: (2, None),
    GateType.NOT: (1, 1),
    GateType.BUFF: (1, 1),
    GateType.XOR: (2, None),
    GateType.XNOR: (2, None),
    GateType.MUX2: (3, 3),
    GateType.CONST0: (0, 0),
    GateType.CONST1: (0, 0),
    GateType.DFF: (1, 1),
}


def controlling_value(gtype: GateType) -> int | None:
    """Controlling input value of ``gtype`` (``None`` if it has none).

    A controlling value on any input fixes the output regardless of the
    other inputs: 0 for AND/NAND, 1 for OR/NOR.  NOT/BUFF/XOR/XNOR/MUX2
    have no controlling value.
    """
    return _CONTROLLING.get(gtype)


def controlled_response(gtype: GateType) -> int | None:
    """Output value of ``gtype`` when some input has the controlling value."""
    return _CONTROLLED_RESPONSE.get(gtype)


def is_inverting(gtype: GateType) -> bool:
    """True if the gate inverts parity from any single input to the output.

    Used by backtrace to track the required value through a chain of gates.
    For XOR/XNOR the notion applies to the single input being traced with
    the other inputs held; XOR is parity-preserving, XNOR parity-inverting.
    """
    return gtype in _INVERTING


def check_arity(gtype: GateType, n_inputs: int) -> None:
    """Raise :class:`NetlistError` on an illegal ``n_inputs`` for
    ``gtype``."""
    lo, hi = _ARITY[gtype]
    if n_inputs < lo or (hi is not None and n_inputs > hi):
        bound = f"exactly {lo}" if hi == lo else f">= {lo}"
        raise NetlistError(
            f"{gtype} requires {bound} inputs, got {n_inputs}")


def eval_gate(gtype: GateType, values: Sequence[int]) -> int:
    """Two-valued evaluation of one gate. ``values`` are 0/1 ints.

    ``DFF`` is transparent here (returns its D input); sequential behaviour
    is handled by the scan/simulation layers, which decide *when* to update.
    """
    if gtype is GateType.AND:
        return int(all(values))
    if gtype is GateType.NAND:
        return int(not all(values))
    if gtype is GateType.OR:
        return int(any(values))
    if gtype is GateType.NOR:
        return int(not any(values))
    if gtype is GateType.NOT:
        return 1 - values[0]
    if gtype in (GateType.BUFF, GateType.DFF):
        return int(values[0])
    if gtype is GateType.XOR:
        return int(sum(values) & 1)
    if gtype is GateType.XNOR:
        return int(1 - (sum(values) & 1))
    if gtype is GateType.MUX2:
        sel, d0, d1 = values
        return int(d1 if sel else d0)
    if gtype is GateType.CONST0:
        return 0
    if gtype is GateType.CONST1:
        return 1
    raise NetlistError(f"cannot evaluate gate type {gtype}")


def eval_gate3(gtype: GateType, values: Sequence[int]) -> int:
    """Three-valued (0/1/X) evaluation of one gate.

    Standard pessimistic X-propagation: a controlling value dominates X;
    an X anywhere else makes the output X.  For MUX2 an X select with equal
    data values still yields that value.
    """
    cv = controlling_value(gtype)
    if cv is not None:
        if cv in values:
            return _CONTROLLED_RESPONSE[gtype]
        if X in values:
            return X
        return 1 - _CONTROLLED_RESPONSE[gtype]
    if gtype is GateType.NOT:
        v = values[0]
        return X if v == X else 1 - v
    if gtype in (GateType.BUFF, GateType.DFF):
        return values[0]
    if gtype in (GateType.XOR, GateType.XNOR):
        if X in values:
            return X
        parity = sum(values) & 1
        return parity if gtype is GateType.XOR else 1 - parity
    if gtype is GateType.MUX2:
        sel, d0, d1 = values
        if sel == 0:
            return d0
        if sel == 1:
            return d1
        return d0 if d0 == d1 and d0 != X else X
    if gtype is GateType.CONST0:
        return 0
    if gtype is GateType.CONST1:
        return 1
    raise NetlistError(f"cannot evaluate gate type {gtype}")
