"""ISCAS89 ``.bench`` format reader and writer.

The ``.bench`` grammar as used by the ISCAS85/89 distributions:

.. code-block:: text

    # comment
    INPUT(G0)
    OUTPUT(G17)
    G10 = NAND(G0, G1)
    G11 = DFF(G10)

Gate keywords are case-insensitive; ``BUF`` is accepted as an alias of
``BUFF`` and ``INV`` as an alias of ``NOT``.  Zero-input tie cells are
written as ``X = CONST0()``.
"""

from __future__ import annotations

import re
from collections.abc import Iterable
from pathlib import Path

from repro.errors import BenchParseError
from repro.netlist.circuit import Circuit
from repro.netlist.gates import GateType

__all__ = ["parse_bench", "parse_bench_file", "write_bench",
           "write_bench_file"]

_IO_RE = re.compile(r"^(INPUT|OUTPUT)\s*\(\s*([^\s()]+)\s*\)$",
                    re.IGNORECASE)
_GATE_RE = re.compile(
    r"^([^\s=()]+)\s*=\s*([A-Za-z][A-Za-z0-9_]*)\s*\(\s*(.*?)\s*\)$")

_TYPE_ALIASES = {
    "AND": GateType.AND,
    "NAND": GateType.NAND,
    "OR": GateType.OR,
    "NOR": GateType.NOR,
    "NOT": GateType.NOT,
    "INV": GateType.NOT,
    "BUFF": GateType.BUFF,
    "BUF": GateType.BUFF,
    "XOR": GateType.XOR,
    "XNOR": GateType.XNOR,
    "DFF": GateType.DFF,
    "MUX2": GateType.MUX2,
    "MUX": GateType.MUX2,
    "CONST0": GateType.CONST0,
    "CONST1": GateType.CONST1,
}


def parse_bench(text: str, name: str = "bench") -> Circuit:
    """Parse ``.bench`` source text into a validated :class:`Circuit`.

    Raises :class:`BenchParseError` with line information on malformed
    input, and :class:`NetlistError` (via validation) on structurally
    broken netlists.
    """
    circuit = Circuit(name)
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        io_match = _IO_RE.match(line)
        if io_match:
            keyword, signal = io_match.groups()
            if keyword.upper() == "INPUT":
                circuit.add_input(signal)
            else:
                circuit.add_output(signal)
            continue
        gate_match = _GATE_RE.match(line)
        if gate_match:
            output, type_name, arg_text = gate_match.groups()
            gtype = _TYPE_ALIASES.get(type_name.upper())
            if gtype is None:
                raise BenchParseError(
                    f"unknown gate type {type_name!r}", lineno, line)
            args = [a.strip() for a in arg_text.split(",")] if arg_text \
                else []
            args = [a for a in args if a]
            try:
                circuit.add_gate(output, gtype, args)
            except Exception as exc:
                raise BenchParseError(str(exc), lineno, line) from exc
            continue
        raise BenchParseError("unrecognised statement", lineno, line)
    circuit.validate()
    return circuit


def parse_bench_file(path: str | Path, name: str | None = None) -> Circuit:
    """Read and parse a ``.bench`` file; circuit name defaults to the stem."""
    path = Path(path)
    text = path.read_text(encoding="utf-8")
    return parse_bench(text, name if name is not None else path.stem)


def _bench_lines(circuit: Circuit) -> Iterable[str]:
    yield f"# {circuit.name}"
    yield (f"# {len(circuit.inputs)} inputs, {len(circuit.outputs)} outputs, "
           f"{len(circuit.dff_gates)} DFFs, "
           f"{len(circuit.combinational_gates())} combinational gates")
    yield ""
    for pi in circuit.inputs:
        yield f"INPUT({pi})"
    yield ""
    for po in circuit.outputs:
        yield f"OUTPUT({po})"
    yield ""
    for gate in circuit.gates.values():
        yield f"{gate.output} = {gate.gtype.value}({', '.join(gate.inputs)})"


def write_bench(circuit: Circuit) -> str:
    """Serialise ``circuit`` to ``.bench`` text (round-trips with parser)."""
    return "\n".join(_bench_lines(circuit)) + "\n"


def write_bench_file(circuit: Circuit, path: str | Path) -> Path:
    """Write ``circuit`` to ``path`` in ``.bench`` format; returns the path."""
    path = Path(path)
    path.write_text(write_bench(circuit), encoding="utf-8")
    return path
