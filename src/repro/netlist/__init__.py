"""Gate-level netlist representation and the ISCAS89 ``.bench`` format.

Public surface:

* :class:`~repro.netlist.circuit.Circuit` /
  :class:`~repro.netlist.circuit.Gate`
  — the core data structure;
* :class:`~repro.netlist.gates.GateType` and gate semantics helpers;
* :func:`~repro.netlist.bench.parse_bench` /
  :func:`~repro.netlist.bench.write_bench` — the ``.bench`` codec;
* :func:`~repro.netlist.stats.circuit_stats` — summary statistics;
* structural transforms and reference circuit builders.
"""

from repro.netlist.bench import (
    parse_bench,
    parse_bench_file,
    write_bench,
    write_bench_file,
)
from repro.netlist.circuit import Circuit, Gate
from repro.netlist.gates import (
    COMBINATIONAL_TYPES,
    COMMUTATIVE_TYPES,
    SEQUENTIAL_TYPES,
    TRANSPARENT_TYPES,
    GateType,
    X,
    check_arity,
    controlled_response,
    controlling_value,
    eval_gate,
    eval_gate3,
    is_inverting,
)
from repro.netlist.stats import CircuitStats, circuit_stats
from repro.netlist.transform import (
    propagate_constants,
    remove_buffers,
    sweep_dangling,
)
from repro.netlist import builders

__all__ = [
    "Circuit",
    "Gate",
    "GateType",
    "X",
    "COMBINATIONAL_TYPES",
    "COMMUTATIVE_TYPES",
    "SEQUENTIAL_TYPES",
    "TRANSPARENT_TYPES",
    "check_arity",
    "controlled_response",
    "controlling_value",
    "eval_gate",
    "eval_gate3",
    "is_inverting",
    "parse_bench",
    "parse_bench_file",
    "write_bench",
    "write_bench_file",
    "CircuitStats",
    "circuit_stats",
    "remove_buffers",
    "sweep_dangling",
    "propagate_constants",
    "builders",
]
