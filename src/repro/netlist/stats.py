"""Circuit statistics: gate-type histogram, depth, fanout distribution."""

from __future__ import annotations

import dataclasses
from collections import Counter

from repro.netlist.circuit import Circuit
from repro.netlist.gates import GateType

__all__ = ["CircuitStats", "circuit_stats"]


@dataclasses.dataclass(frozen=True)
class CircuitStats:
    """Summary statistics for a :class:`~repro.netlist.Circuit`."""

    name: str
    n_inputs: int
    n_outputs: int
    n_dffs: int
    n_gates: int                     # combinational gates only
    gate_counts: dict[str, int]      # per combinational gate type
    depth: int                       # max logic level
    max_fanout: int
    mean_fanout: float               # over lines with at least one sink

    def describe(self) -> str:
        """Multi-line human-readable rendering."""
        type_part = ", ".join(
            f"{t}:{n}" for t, n in sorted(self.gate_counts.items()))
        return (
            f"{self.name}: {self.n_inputs} PI, {self.n_outputs} PO, "
            f"{self.n_dffs} DFF, {self.n_gates} gates ({type_part}), "
            f"depth {self.depth}, fanout max {self.max_fanout} "
            f"mean {self.mean_fanout:.2f}")


def circuit_stats(circuit: Circuit) -> CircuitStats:
    """Compute :class:`CircuitStats` for ``circuit``."""
    counts: Counter[str] = Counter()
    for gate in circuit.combinational_gates():
        counts[gate.gtype.value] += 1

    fanouts = [circuit.fanout_count(line) for line in circuit.lines()]
    used = [f for f in fanouts if f > 0]
    return CircuitStats(
        name=circuit.name,
        n_inputs=len(circuit.inputs),
        n_outputs=len(circuit.outputs),
        n_dffs=len(circuit.dff_gates),
        n_gates=len(circuit.combinational_gates()),
        gate_counts=dict(counts),
        depth=circuit.depth(),
        max_fanout=max(fanouts, default=0),
        mean_fanout=(sum(used) / len(used)) if used else 0.0,
    )


def count_type(circuit: Circuit, gtype: GateType) -> int:
    """Number of gates of ``gtype`` in ``circuit`` (including DFF)."""
    return sum(1 for g in circuit.gates.values() if g.gtype is gtype)
