"""Structural netlist transforms.

These are conservative, function-preserving clean-ups used before mapping
and by the synthetic benchmark generator:

* :func:`remove_buffers` — splice out BUFF gates;
* :func:`sweep_dangling` — delete combinational gates whose outputs reach
  neither a primary output nor a flop;
* :func:`propagate_constants` — fold CONST0/CONST1 drivers into fanout
  gates where the result stays within the supported gate types.
"""

from __future__ import annotations

from repro.netlist.circuit import Circuit, Gate
from repro.netlist.gates import GateType, SEQUENTIAL_TYPES

__all__ = ["remove_buffers", "sweep_dangling", "propagate_constants"]


def remove_buffers(circuit: Circuit) -> int:
    """Splice out every BUFF gate; returns the number removed.

    A buffer whose output is a primary output is kept (removing it would
    rename the PO), unless its input is itself a primary output already.
    """
    removed = 0
    for line in list(circuit.gates):
        gate = circuit.gates.get(line)
        if gate is None or gate.gtype is not GateType.BUFF:
            continue
        if circuit.is_output(gate.output):
            continue
        source = gate.inputs[0]
        circuit.remove_gate(gate.output)
        for sink, _pin in list(circuit.fanout(gate.output)):
            sink_gate = circuit.gates[sink]
            new_inputs = tuple(source if i == gate.output else i
                               for i in sink_gate.inputs)
            circuit.replace_gate(sink, sink_gate.gtype, new_inputs)
        removed += 1
    circuit.validate()
    return removed


def sweep_dangling(circuit: Circuit) -> int:
    """Remove combinational gates observing neither a PO nor a flop.

    Iterates to a fixed point; returns the total number of gates removed.
    DFF gates and primary outputs are roots.
    """
    removed = 0
    while True:
        roots = set(circuit.outputs)
        for dff in circuit.dff_gates:
            roots.add(dff.output)
            roots.update(dff.inputs)
        dead = [
            g.output for g in circuit.combinational_gates()
            if g.output not in roots and circuit.fanout_count(g.output) == 0
        ]
        if not dead:
            break
        for line in dead:
            circuit.remove_gate(line)
            removed += 1
    circuit.validate()
    return removed


_CONST_TYPES = (GateType.CONST0, GateType.CONST1)


def propagate_constants(circuit: Circuit) -> int:
    """Fold constant drivers into their fanout gates; returns folds done.

    Handles the cases needed after MUX tie-off insertion:

    * AND/NAND with a constant-0 input becomes CONST0/CONST1;
    * OR/NOR with a constant-1 input becomes CONST1/CONST0;
    * non-controlling constant inputs are dropped (gate arity shrinks;
      a 1-input AND/OR collapses to BUFF, NAND/NOR to NOT);
    * NOT/BUFF of a constant becomes the complementary/same constant.

    Constants feeding DFFs, XOR/XNOR or MUX2 selects are left alone (the
    scan analysis handles those natively).  Unused constant gates are *not*
    deleted here; run :func:`sweep_dangling` afterwards.
    """
    folds = 0
    changed = True
    while changed:
        changed = False
        const_value = {
            g.output: (0 if g.gtype is GateType.CONST0 else 1)
            for g in circuit.combinational_gates()
            if g.gtype in _CONST_TYPES
        }
        if not const_value:
            break
        for gate in list(circuit.combinational_gates()):
            if gate.gtype in _CONST_TYPES:
                continue
            if not any(i in const_value for i in gate.inputs):
                continue
            folded = _fold_gate(gate, const_value)
            if folded is not None and folded != (gate.gtype, gate.inputs):
                circuit.replace_gate(gate.output, folded[0], folded[1])
                folds += 1
                changed = True
    circuit.validate()
    return folds


def _fold_gate(gate: Gate, const_value: dict[str, int]
               ) -> tuple[GateType, tuple[str, ...]] | None:
    """Folded (gtype, inputs) for ``gate``, or None when not foldable."""
    gtype = gate.gtype
    if gtype in SEQUENTIAL_TYPES or gtype in (
            GateType.XOR, GateType.XNOR, GateType.MUX2):
        return None
    if gtype in (GateType.NOT, GateType.BUFF):
        value = const_value.get(gate.inputs[0])
        if value is None:
            return None
        if gtype is GateType.NOT:
            value = 1 - value
        new_type = GateType.CONST1 if value else GateType.CONST0
        return (new_type, ())

    controlling = 0 if gtype in (GateType.AND, GateType.NAND) else 1
    inverting = gtype in (GateType.NAND, GateType.NOR)
    kept: list[str] = []
    for src in gate.inputs:
        value = const_value.get(src)
        if value is None:
            kept.append(src)
        elif value == controlling:
            out = controlling ^ (1 if inverting else 0)
            new_type = GateType.CONST1 if out else GateType.CONST0
            return (new_type, ())
        # non-controlling constant: drop the input
    if len(kept) == len(gate.inputs):
        return None
    if not kept:
        # all inputs were non-controlling constants
        out = (1 - controlling) ^ (1 if inverting else 0)
        new_type = GateType.CONST1 if out else GateType.CONST0
        return (new_type, ())
    if len(kept) == 1:
        new_type = GateType.NOT if inverting else GateType.BUFF
        return (new_type, tuple(kept))
    return (gtype, tuple(kept))
