"""PODEM test generation for single stuck-at faults.

Classic PODEM (Goel 1981): decisions are made only on controllable inputs
(here: primary inputs *and* pseudo-inputs, since scan makes flops fully
controllable), mapped from internal objectives by backtrace, with
three-valued implication after every decision and chronological
backtracking.

Instead of a 5-valued D-calculus we carry **two** three-valued
simulations — the good machine and the faulty machine (with the fault
site forced) — which is equivalent: a line carries ``D`` exactly when the
two machines disagree on binary values.

Implementation note: the inner machine works on an integer-indexed copy
of the netlist (opcode dispatch, flat lists, index heaps).  PODEM spends
its whole life in implication; the index form is ~20x faster than
evaluating :class:`~repro.netlist.gates.GateType` objects through dicts,
which is what makes ATPG on the s9234-class circuits tractable in pure
Python.  All public interfaces speak line names.
"""

from __future__ import annotations

import dataclasses
import heapq
from collections.abc import Mapping

from repro.atpg.faults import Fault, observable_lines
from repro.atpg.scoap import compute_scoap
from repro.errors import AtpgError
from repro.netlist.circuit import Circuit
from repro.netlist.gates import GateType, X
from repro.simulation.eval2 import comb_input_lines

__all__ = ["PodemResult", "PodemEngine", "generate_test"]

# integer opcodes for the index machine
_AND, _NAND, _OR, _NOR, _NOT, _BUF, _XOR, _XNOR, _MUX, _C0, _C1 = range(11)

_OPCODE = {
    GateType.AND: _AND, GateType.NAND: _NAND,
    GateType.OR: _OR, GateType.NOR: _NOR,
    GateType.NOT: _NOT, GateType.BUFF: _BUF,
    GateType.XOR: _XOR, GateType.XNOR: _XNOR,
    GateType.MUX2: _MUX,
    GateType.CONST0: _C0, GateType.CONST1: _C1,
}

#: controlling value per opcode (None encoded as -1)
_CV = {_AND: 0, _NAND: 0, _OR: 1, _NOR: 1}
_RESPONSE = {_AND: 0, _NAND: 1, _OR: 1, _NOR: 0}


@dataclasses.dataclass
class PodemResult:
    """Outcome of one PODEM run.

    ``status`` is "detected", "untestable" or "aborted"; on detection
    ``assignment`` holds the (possibly partial) controllable input values.
    """

    status: str
    assignment: dict[str, int]
    backtracks: int

    @property
    def detected(self) -> bool:
        return self.status == "detected"


def _eval_op(op: int, values: list[int], fanin: tuple[int, ...]) -> int:
    """Three-valued evaluation over the index machine's value list."""
    if op == _NAND or op == _AND:
        saw_x = False
        for i in fanin:
            v = values[i]
            if v == 0:
                return 1 if op == _NAND else 0
            if v == X:
                saw_x = True
        if saw_x:
            return X
        return 0 if op == _NAND else 1
    if op == _NOR or op == _OR:
        saw_x = False
        for i in fanin:
            v = values[i]
            if v == 1:
                return 0 if op == _NOR else 1
            if v == X:
                saw_x = True
        if saw_x:
            return X
        return 1 if op == _NOR else 0
    if op == _NOT:
        v = values[fanin[0]]
        return X if v == X else 1 - v
    if op == _BUF:
        return values[fanin[0]]
    if op == _XOR or op == _XNOR:
        parity = 0
        for i in fanin:
            v = values[i]
            if v == X:
                return X
            parity ^= v
        return parity if op == _XOR else 1 - parity
    if op == _MUX:
        sel = values[fanin[0]]
        d0 = values[fanin[1]]
        d1 = values[fanin[2]]
        if sel == 0:
            return d0
        if sel == 1:
            return d1
        if d0 == d1 and d0 != X:
            return d0
        return X
    if op == _C0:
        return 0
    return 1


class PodemEngine:
    """Reusable PODEM engine over an integer-indexed netlist.

    The expensive circuit-wide structures — index maps, opcode/fanin/
    fanout tables, SCOAP measures — are built **once**; each fault only
    resets the value arrays and looks up its (cached) fanout cone.  Use
    one engine per circuit when generating many tests
    (:func:`repro.atpg.generate.generate_tests` does).
    """

    def __init__(self, circuit: Circuit):
        self.circuit = circuit

        names = list(circuit.lines())
        self.index = {name: i for i, name in enumerate(names)}
        self.names = names
        n = len(names)

        # per-line gate description (-1 op for sources / flop outputs)
        self.op: list[int] = [-1] * n
        self.fanin: list[tuple[int, ...]] = [()] * n
        self.level: list[int] = [0] * n
        self.fanout: list[list[int]] = [[] for _ in range(n)]
        self.topo_idx: list[int] = []

        for line in circuit.topo_order():
            li = self.index[line]
            gate = circuit.gates[line]
            self.op[li] = _OPCODE[gate.gtype]
            fin = tuple(self.index[s] for s in gate.inputs)
            self.fanin[li] = fin
            self.level[li] = circuit.level_of(line)
            self.topo_idx.append(li)
            for si in fin:
                self.fanout[si].append(li)

        self.input_idx = [self.index[s] for s in comb_input_lines(circuit)]
        self.input_set = set(self.input_idx)
        self.obs_idx = [self.index[s] for s in observable_lines(circuit)]
        self.obs_set = set(self.obs_idx)

        # SCOAP testability guides backtrace (easiest/hardest choices)
        # and D-frontier selection (most observable propagation path).
        scoap = compute_scoap(circuit)
        self.cc0 = [scoap.cc0.get(name, 1) for name in names]
        self.cc1 = [scoap.cc1.get(name, 1) for name in names]
        self.co = [scoap.co.get(name, 0) for name in names]

        self.good: list[int] = [X] * n
        self.bad: list[int] = [X] * n
        self.assignment: dict[int, int] = {}
        self._cone_cache: dict[int, list[int]] = {}

        # fault-specific state, set by _retarget
        self.fault_idx = -1
        self.stuck = 0
        self.cone_idx: list[int] = []

    def _retarget(self, fault: Fault) -> None:
        """Point the engine at a new fault and reset the machines."""
        try:
            self.fault_idx = self.index[fault.line]
        except KeyError:
            raise AtpgError(
                f"fault line {fault.line!r} not in circuit") from None
        self.stuck = fault.stuck_at
        cone = self._cone_cache.get(self.fault_idx)
        if cone is None:
            cone_names = self.circuit.fanout_cone(fault.line)
            cone = [li for li in self.topo_idx
                    if self.names[li] in cone_names]
            self._cone_cache[self.fault_idx] = cone
        self.cone_idx = cone

        self.assignment = {}
        good, bad = self.good, self.bad
        for i in range(len(good)):
            good[i] = X
            bad[i] = X
        if self.op[self.fault_idx] == -1:
            bad[self.fault_idx] = self.stuck
        self._full_imply()

    # -- implication ---------------------------------------------------- #

    def _full_imply(self) -> None:
        good, bad = self.good, self.bad
        for li in self.topo_idx:
            good[li] = _eval_op(self.op[li], good, self.fanin[li])
            if li == self.fault_idx:
                bad[li] = self.stuck
            else:
                bad[li] = _eval_op(self.op[li], bad, self.fanin[li])

    def _propagate(self, seed: int) -> None:
        good, bad = self.good, self.bad
        level = self.level
        pending: list[tuple[int, int]] = []
        queued: set[int] = set()
        for si in self.fanout[seed]:
            queued.add(si)
            heapq.heappush(pending, (level[si], si))
        while pending:
            _lv, li = heapq.heappop(pending)
            queued.discard(li)
            g = _eval_op(self.op[li], good, self.fanin[li])
            if li == self.fault_idx:
                b = self.stuck
            else:
                b = _eval_op(self.op[li], bad, self.fanin[li])
            if g != good[li] or b != bad[li]:
                good[li] = g
                bad[li] = b
                for si in self.fanout[li]:
                    if si not in queued:
                        queued.add(si)
                        heapq.heappush(pending, (level[si], si))

    def set_input(self, li: int, value: int) -> None:
        self.good[li] = value
        self.bad[li] = self.stuck if li == self.fault_idx else value
        self._propagate(li)

    def assign(self, li: int, value: int) -> None:
        self.assignment[li] = value
        self.set_input(li, value)

    def unassign(self, li: int) -> None:
        del self.assignment[li]
        self.set_input(li, X)

    # -- state queries ---------------------------------------------------- #

    def is_d(self, li: int) -> bool:
        g = self.good[li]
        return g != X and self.bad[li] != X and g != self.bad[li]

    def detected(self) -> bool:
        return any(self.is_d(o) for o in self.obs_idx)

    def activated(self) -> bool:
        return self.is_d(self.fault_idx)

    def activation_possible(self) -> bool:
        return self.good[self.fault_idx] != self.stuck

    def d_frontier(self) -> list[int]:
        """Gates (inside the fault cone) with a D input and an
        undetermined output, in topological order."""
        frontier = []
        good, bad = self.good, self.bad
        for li in self.cone_idx:
            if good[li] != X and bad[li] != X:
                continue
            for si in self.fanin[li]:
                if self.is_d(si):
                    frontier.append(li)
                    break
        return frontier

    def has_x_path(self, li: int) -> bool:
        obs = self.obs_set
        seen: set[int] = set()
        stack = [li]
        good, bad = self.good, self.bad
        while stack:
            cur = stack.pop()
            if cur in seen:
                continue
            seen.add(cur)
            if cur in obs:
                return True
            for si in self.fanout[cur]:
                if good[si] == X or bad[si] == X:
                    stack.append(si)
        return False


def _backtrace(machine: PodemEngine, li: int, value: int
               ) -> tuple[int, int] | None:
    """Map an internal objective to a controllable-input assignment."""
    good = machine.good
    current, target = li, value
    for _ in range(len(machine.names) + 2):
        if current in machine.input_set:
            return current, target
        op = machine.op[current]
        if op == -1:
            return None  # uncontrollable source (should not occur here)
        fanin = machine.fanin[current]
        x_inputs = [s for s in fanin if good[s] == X]
        if not x_inputs:
            return None
        if op == _NOT:
            current, target = fanin[0], 1 - target
            continue
        if op == _BUF:
            current, target = fanin[0], target
            continue
        if op == _XOR or op == _XNOR:
            known = 0
            for s in fanin:
                if good[s] != X:
                    known ^= good[s]
            parity = target if op == _XOR else 1 - target
            current, target = x_inputs[0], parity ^ known
            continue
        if op == _MUX:
            current, target = x_inputs[0], 0
            continue
        cv = _CV.get(op)
        if cv is None:
            return None
        if target == _RESPONSE[op]:
            # one controlling input suffices: easiest to set to cv
            cc = machine.cc1 if cv else machine.cc0
            current = min(x_inputs, key=cc.__getitem__)
            target = cv
        else:
            # all inputs must be non-controlling: hardest first
            cc = machine.cc0 if cv else machine.cc1
            current = max(x_inputs, key=cc.__getitem__)
            target = 1 - cv
    raise AtpgError("backtrace did not terminate")  # pragma: no cover


def _objective(machine: PodemEngine) -> tuple[int, int] | None:
    """Next (line index, value) objective, or None when hopeless."""
    if not machine.activated():
        if not machine.activation_possible():
            return None
        return machine.fault_idx, 1 - machine.stuck
    good = machine.good
    frontier = machine.d_frontier()
    frontier.sort(key=machine.co.__getitem__)
    for gate_idx in frontier:
        if not machine.has_x_path(gate_idx):
            continue
        op = machine.op[gate_idx]
        cv = _CV.get(op)
        for si in machine.fanin[gate_idx]:
            if good[si] == X:
                return si, (1 - cv) if cv is not None else 0
    return None


def generate_test(circuit: Circuit, fault: Fault,
                  max_backtracks: int = 100,
                  max_decisions: int = 20_000,
                  engine: PodemEngine | None = None) -> PodemResult:
    """Run PODEM for one fault on the combinational test view.

    Returns a :class:`PodemResult`; "untestable" means the whole decision
    tree was exhausted (the fault is provably redundant at this netlist),
    "aborted" means the backtrack or decision budget ran out first.

    Pass a shared :class:`PodemEngine` when generating tests for many
    faults of the same circuit — it amortises the netlist indexing and
    SCOAP computation.
    """
    machine = engine if engine is not None else PodemEngine(circuit)
    if machine.circuit is not circuit:
        raise AtpgError("engine belongs to a different circuit")
    machine._retarget(fault)
    # decision stack entries: (input index, value, both_tried)
    stack: list[tuple[int, int, bool]] = []
    backtracks = 0
    decisions = 0

    def result(status: str) -> PodemResult:
        assignment = {machine.names[i]: v
                      for i, v in machine.assignment.items()}
        return PodemResult(status, assignment if status == "detected"
                           else {}, backtracks)

    while True:
        if machine.detected():
            return result("detected")
        objective = _objective(machine)
        decision = None
        if objective is not None:
            decision = _backtrace(machine, *objective)
        if decision is not None:
            li, value = decision
            decisions += 1
            if decisions > max_decisions:
                return result("aborted")
            machine.assign(li, value)
            stack.append((li, value, False))
            continue
        # No way forward: chronological backtracking.
        while stack:
            li, value, both = stack.pop()
            machine.unassign(li)
            if not both:
                backtracks += 1
                if backtracks > max_backtracks:
                    return result("aborted")
                machine.assign(li, 1 - value)
                stack.append((li, 1 - value, True))
                break
        else:
            return result("untestable")


def fill_dont_cares(circuit: Circuit, assignment: Mapping[str, int],
                    fill_value_fn) -> dict[str, int]:
    """Complete a partial PODEM assignment over all controllable inputs.

    ``fill_value_fn(line)`` supplies the value for unassigned lines
    (random fill, zero fill, or the repeat-last-vector fill ATOM uses).
    """
    values = dict(assignment)
    for line in comb_input_lines(circuit):
        if line not in values:
            values[line] = fill_value_fn(line)
    return values
