"""Structural equivalence collapsing of stem faults.

Standard rules, restricted to stems whose entire fanout is the gate in
question (fanout count 1), so the equivalences are exact:

* ``NOT``:  in/sa0 == out/sa1,  in/sa1 == out/sa0
* ``BUFF``: in/sav == out/sav
* ``AND``:  in/sa0 == out/sa0      ``NAND``: in/sa0 == out/sa1
* ``OR``:   in/sa1 == out/sa1      ``NOR``:  in/sa1 == out/sa0

Classes are built with union-find; the representative is the member
closest to the inputs (lowest logic level, then lexicographic) so the
collapsed set is deterministic.
"""

from __future__ import annotations

from repro.atpg.faults import Fault
from repro.netlist.circuit import Circuit
from repro.netlist.gates import GateType, SEQUENTIAL_TYPES

__all__ = ["collapse_faults", "equivalence_classes"]

_CONTROLLED = {
    GateType.AND: (0, 0),    # input sa0 == output sa0
    GateType.NAND: (0, 1),   # input sa0 == output sa1
    GateType.OR: (1, 1),
    GateType.NOR: (1, 0),
}


class _UnionFind:
    def __init__(self) -> None:
        self._parent: dict[Fault, Fault] = {}

    def find(self, item: Fault) -> Fault:
        parent = self._parent.setdefault(item, item)
        if parent is item:
            return item
        root = self.find(parent)
        self._parent[item] = root
        return root

    def union(self, a: Fault, b: Fault) -> None:
        ra, rb = self.find(a), self.find(b)
        if ra != rb:
            self._parent[ra] = rb


def _build_classes(circuit: Circuit,
                   faults: list[Fault]) -> dict[Fault, list[Fault]]:
    uf = _UnionFind()
    fault_set = set(faults)
    for gate in circuit.gates.values():
        if gate.gtype in SEQUENTIAL_TYPES:
            continue
        out = gate.output
        if gate.gtype in (GateType.NOT, GateType.BUFF):
            src = gate.inputs[0]
            if circuit.fanout_count(src) != 1:
                continue
            invert = gate.gtype is GateType.NOT
            for v in (0, 1):
                fin = Fault(src, v)
                fout = Fault(out, (1 - v) if invert else v)
                if fin in fault_set and fout in fault_set:
                    uf.union(fin, fout)
            continue
        rule = _CONTROLLED.get(gate.gtype)
        if rule is None:
            continue
        in_sa, out_sa = rule
        fout = Fault(out, out_sa)
        if fout not in fault_set:
            continue
        for src in gate.inputs:
            if circuit.fanout_count(src) != 1:
                continue
            fin = Fault(src, in_sa)
            if fin in fault_set:
                uf.union(fin, fout)

    classes: dict[Fault, list[Fault]] = {}
    for fault in faults:
        classes.setdefault(uf.find(fault), []).append(fault)
    return classes


def _representative(circuit: Circuit, members: list[Fault]) -> Fault:
    def key(fault: Fault) -> tuple[int, str, int]:
        try:
            level = circuit.level_of(fault.line)
        except Exception:
            level = 0
        return (level, fault.line, fault.stuck_at)
    return min(members, key=key)


def equivalence_classes(circuit: Circuit, faults: list[Fault]
                        ) -> dict[Fault, list[Fault]]:
    """Map each class representative to its full membership list."""
    raw = _build_classes(circuit, faults)
    return {
        _representative(circuit, members): sorted(members)
        for members in raw.values()
    }


def collapse_faults(circuit: Circuit, faults: list[Fault]) -> list[Fault]:
    """The collapsed fault list (one representative per class), sorted."""
    return sorted(equivalence_classes(circuit, faults))
