"""Single stuck-at fault model on netlist lines.

Faults live on *stems*: every combinational input (primary inputs and
pseudo-inputs) and every combinational gate output, each stuck-at-0 and
stuck-at-1.  Fanout-branch faults are not modelled separately; structural
equivalence collapsing (:mod:`repro.atpg.collapse`) then shrinks the stem
universe further.  This matches the granularity at which ``.bench``-level
ATPG tools (including ATOM's published experiments) report coverage.
"""

from __future__ import annotations

import dataclasses

from repro.netlist.circuit import Circuit
from repro.netlist.gates import SEQUENTIAL_TYPES
from repro.simulation.eval2 import comb_input_lines

__all__ = ["Fault", "all_faults", "observable_lines"]


@dataclasses.dataclass(frozen=True, order=True)
class Fault:
    """Line ``line`` stuck at ``stuck_at`` (0 or 1)."""

    line: str
    stuck_at: int

    def __post_init__(self) -> None:
        if self.stuck_at not in (0, 1):
            raise ValueError(f"stuck_at must be 0/1, got {self.stuck_at!r}")

    def __str__(self) -> str:
        return f"{self.line}/sa{self.stuck_at}"


def all_faults(circuit: Circuit) -> list[Fault]:
    """The uncollapsed stem fault universe of the combinational test view."""
    lines: list[str] = list(comb_input_lines(circuit))
    lines.extend(
        g.output for g in circuit.gates.values()
        if g.gtype not in SEQUENTIAL_TYPES)
    faults: list[Fault] = []
    for line in lines:
        faults.append(Fault(line, 0))
        faults.append(Fault(line, 1))
    return faults


def observable_lines(circuit: Circuit) -> list[str]:
    """Lines where fault effects are observed in scan test.

    Primary outputs plus every flop D line (captured into the chain and
    shifted out).  Deduplicated, order-stable.
    """
    seen: set[str] = set()
    result: list[str] = []
    for line in list(circuit.outputs) + [
            g.inputs[0] for g in circuit.dff_gates]:
        if line not in seen:
            seen.add(line)
            result.append(line)
    return result
