"""Bit-parallel stuck-at fault simulation with fault dropping.

For each fault: force the faulty line's packed waveform to the stuck
value, re-simulate only the fault's fanout cone, and compare the good and
faulty words at the observable lines.  With 64-4096 patterns per packed
word this is the standard parallel-pattern single-fault method.

The heavy lifting is delegated to the selected simulation backend via
:meth:`~repro.simulation.backends.base.Backend.fault_simulate_batch`:

* ``bigint`` runs the scalar big-int cone replay below (the bit-exact
  reference);
* ``numpy`` replays whole fault batches on the ``uint64`` pattern matrix
  (:mod:`repro.simulation.backends.fault_kernel`);
* ``sharded`` partitions the fault list over worker processes and merges
  the per-shard results deterministically
  (:mod:`repro.simulation.backends.sharded`).

All engines return bit-identical detection words and the same
``remaining`` ordering; the differential property tests in
``tests/properties`` enforce this.
"""

from __future__ import annotations

import dataclasses
from collections.abc import Mapping, Sequence

from repro.atpg.faults import Fault, observable_lines
from repro.netlist.circuit import Circuit
from repro.simulation.backends import Backend, resolve_fault_backend
from repro.simulation.bitsim import eval_gate_packed
from repro.simulation.values import mask

__all__ = ["FaultSimResult", "detect_word", "fault_simulate",
           "scalar_fault_simulate", "scalar_replay"]


@dataclasses.dataclass
class FaultSimResult:
    """Outcome of simulating a fault list against a pattern set.

    ``detected[f]`` is the packed word of patterns that detect ``f``
    (missing = undetected); ``remaining`` lists the *undetected* faults,
    in the order they were given.
    """

    detected: dict[Fault, int]
    remaining: list[Fault]

    @property
    def n_detected(self) -> int:
        return len(self.detected)

    def coverage(self, n_faults: int | None = None) -> float:
        total = n_faults if n_faults is not None else \
            len(self.detected) + len(self.remaining)
        if total == 0:
            return 1.0
        return len(self.detected) / total


def _cone_order(circuit: Circuit, line: str) -> list[str]:
    """Gate outputs in the fanout cone of ``line``, topologically ordered."""
    cone = circuit.fanout_cone(line)
    return [g for g in circuit.topo_order() if g in cone and g != line]


def detect_word(circuit: Circuit, fault: Fault, good: Mapping[str, int],
                n: int, obs: Sequence[str] | None = None,
                cone: Sequence[str] | None = None) -> int:
    """Packed word of patterns on which ``fault`` is detected.

    ``good`` must hold the fault-free simulation of all lines for the same
    patterns (from :func:`repro.simulation.bitsim.simulate_packed`).
    """
    full = mask(n)
    faulty_value = full if fault.stuck_at else 0
    if good.get(fault.line, None) == faulty_value:
        return 0  # stuck value equals the good value everywhere

    obs = obs if obs is not None else observable_lines(circuit)
    cone = cone if cone is not None else _cone_order(circuit, fault.line)

    faulty: dict[str, int] = {fault.line: faulty_value}
    for out in cone:
        gate = circuit.gates[out]
        words = [faulty.get(src, good[src]) for src in gate.inputs]
        value = eval_gate_packed(gate.gtype, words, full)
        if value == good[out]:
            # Effect dies here; only record differences.
            faulty.pop(out, None)
        else:
            faulty[out] = value

    detected = 0
    for line in obs:
        if line in faulty:
            detected |= faulty[line] ^ good[line]
    return detected


def scalar_replay(circuit: Circuit, faults: Sequence[Fault],
                  good: Mapping[str, int], n: int,
                  cone_cache: dict[str, list[str]] | None = None
                  ) -> FaultSimResult:
    """Scalar cone replay over an already-settled good machine.

    ``good`` holds the fault-free interchange words of every line
    (whichever backend produced them — words are backend-agnostic).
    This is the shared core of :func:`scalar_fault_simulate` and of the
    plan-based reference path
    (:meth:`~repro.simulation.backends.base.Backend.fault_simulate_plan`),
    which reuses one good machine across many calls instead of
    re-simulating it per batch.
    """
    obs = observable_lines(circuit)
    detected: dict[Fault, int] = {}
    remaining: list[Fault] = []
    if cone_cache is None:
        cone_cache = {}
    for fault in faults:
        cone = cone_cache.get(fault.line)
        if cone is None:
            cone = _cone_order(circuit, fault.line)
            cone_cache[fault.line] = cone
        word = detect_word(circuit, fault, good, n, obs, cone)
        if word:
            detected[fault] = word
        else:
            remaining.append(fault)
    return FaultSimResult(detected=detected, remaining=remaining)


def scalar_fault_simulate(backend: Backend, circuit: Circuit,
                          faults: Sequence[Fault],
                          input_words: Mapping[str, int], n: int,
                          drop: bool = True,
                          cone_cache: dict[str, list[str]] | None = None
                          ) -> FaultSimResult:
    """Reference fault simulation: scalar big-int cone replay per fault.

    ``backend`` supplies the fault-free pass; the per-fault replay works
    on interchange words, so detection words are bit-identical no matter
    which backend computed the good machine.  This is the default
    :meth:`~repro.simulation.backends.base.Backend.fault_simulate_batch`
    implementation and the semantics every vectorized kernel must
    reproduce exactly.
    """
    good = backend.simulate_packed(circuit, input_words, n)
    return scalar_replay(circuit, faults, good, n, cone_cache=cone_cache)


def fault_simulate(circuit: Circuit, faults: Sequence[Fault],
                   input_words: Mapping[str, int], n: int,
                   drop: bool = True,
                   cone_cache: dict[str, list[str]] | None = None,
                   backend: str | Backend | None = None
                   ) -> FaultSimResult:
    """Simulate ``faults`` against ``n`` packed patterns.

    ``remaining`` always holds exactly the undetected faults, in input
    order.  ``drop=True`` (default) lets an engine stop refining a fault
    once it is detected; the detection word still records *all* detecting
    patterns of this batch (which reverse-order compaction exploits), so
    the result does not depend on ``drop``.  Dropping *across* batches is
    the caller's job: feed ``result.remaining`` to the next call.

    ``cone_cache`` may be shared across calls on the same (unmodified)
    circuit to amortise fanout-cone extraction on the scalar path
    (vectorized engines keep their own per-circuit plans).

    ``backend`` selects the fault-simulation engine (name, instance or
    ``None``).  ``None`` resolves to ``$REPRO_FAULT_BACKEND`` when set,
    else the session default.  Detection words and ``remaining`` ordering
    are bit-identical across all engines.
    """
    engine = resolve_fault_backend(backend)
    return engine.fault_simulate_batch(circuit, faults, input_words, n,
                                       drop=drop, cone_cache=cone_cache)
