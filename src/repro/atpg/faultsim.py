"""Bit-parallel stuck-at fault simulation with fault dropping.

For each fault: force the faulty line's packed waveform to the stuck
value, re-simulate only the fault's fanout cone, and compare the good and
faulty words at the observable lines.  With 64-4096 patterns per packed
word this is the standard parallel-pattern single-fault method.
"""

from __future__ import annotations

import dataclasses
from collections.abc import Mapping, Sequence

from repro.atpg.faults import Fault, observable_lines
from repro.netlist.circuit import Circuit
from repro.simulation.backends import Backend, resolve_backend
from repro.simulation.bitsim import eval_gate_packed
from repro.simulation.values import mask

__all__ = ["FaultSimResult", "detect_word", "fault_simulate"]


@dataclasses.dataclass
class FaultSimResult:
    """Outcome of simulating a fault list against a pattern set.

    ``detected[f]`` is the packed word of patterns that detect ``f``
    (missing = undetected); ``remaining`` lists undetected faults.
    """

    detected: dict[Fault, int]
    remaining: list[Fault]

    @property
    def n_detected(self) -> int:
        return len(self.detected)

    def coverage(self, n_faults: int | None = None) -> float:
        total = n_faults if n_faults is not None else \
            len(self.detected) + len(self.remaining)
        if total == 0:
            return 1.0
        return len(self.detected) / total


def _cone_order(circuit: Circuit, line: str) -> list[str]:
    """Gate outputs in the fanout cone of ``line``, topologically ordered."""
    cone = circuit.fanout_cone(line)
    return [g for g in circuit.topo_order() if g in cone and g != line]


def detect_word(circuit: Circuit, fault: Fault, good: Mapping[str, int],
                n: int, obs: Sequence[str] | None = None,
                cone: Sequence[str] | None = None) -> int:
    """Packed word of patterns on which ``fault`` is detected.

    ``good`` must hold the fault-free simulation of all lines for the same
    patterns (from :func:`repro.simulation.bitsim.simulate_packed`).
    """
    full = mask(n)
    faulty_value = full if fault.stuck_at else 0
    if good.get(fault.line, None) == faulty_value:
        return 0  # stuck value equals the good value everywhere

    obs = obs if obs is not None else observable_lines(circuit)
    cone = cone if cone is not None else _cone_order(circuit, fault.line)

    faulty: dict[str, int] = {fault.line: faulty_value}
    for out in cone:
        gate = circuit.gates[out]
        words = [faulty.get(src, good[src]) for src in gate.inputs]
        value = eval_gate_packed(gate.gtype, words, full)
        if value == good[out]:
            # Effect dies here; only record differences.
            faulty.pop(out, None)
        else:
            faulty[out] = value

    detected = 0
    for line in obs:
        if line in faulty:
            detected |= faulty[line] ^ good[line]
    return detected


def fault_simulate(circuit: Circuit, faults: Sequence[Fault],
                   input_words: Mapping[str, int], n: int,
                   drop: bool = True,
                   cone_cache: dict[str, list[str]] | None = None,
                   backend: str | Backend | None = None
                   ) -> FaultSimResult:
    """Simulate ``faults`` against ``n`` packed patterns.

    With ``drop=True`` (default) each fault is only simulated until its
    first detection (the word still records *all* detecting patterns of
    this batch, which reverse-order compaction exploits).

    ``cone_cache`` may be shared across calls on the same (unmodified)
    circuit to amortise fanout-cone extraction.

    ``backend`` selects the engine for the fault-free reference
    simulation; the per-fault cone replay operates on interchange words
    and is backend-agnostic, so detection words are bit-identical across
    backends.
    """
    good = resolve_backend(backend).simulate_packed(circuit, input_words, n)
    obs = observable_lines(circuit)
    detected: dict[Fault, int] = {}
    remaining: list[Fault] = []
    if cone_cache is None:
        cone_cache = {}
    for fault in faults:
        cone = cone_cache.get(fault.line)
        if cone is None:
            cone = _cone_order(circuit, fault.line)
            cone_cache[fault.line] = cone
        word = detect_word(circuit, fault, good, n, obs, cone)
        if word:
            detected[fault] = word
            if not drop:
                remaining.append(fault)
        else:
            remaining.append(fault)
    return FaultSimResult(detected=detected, remaining=remaining)
