"""Full deterministic test-set generation (the ATOM [18] substitute).

Pipeline:

1. **Random phase** — batches of packed random vectors are fault-simulated
   with dropping; each pattern that is the *first* detector of some fault
   is kept (like ATOM's random phase).
2. **Deterministic phase** — PODEM per remaining fault, in batches:
   don't-cares are random-filled and the whole batch of new vectors is
   fault-simulated at once against the remaining list (collateral
   detections drop out cheaply).
3. **Reverse-order compaction** — one packed no-drop fault simulation of
   the kept set produces a detection matrix; a reverse greedy pass keeps a
   vector only if it detects some fault no later-kept vector detects.

The output is a :class:`TestSet` of :class:`~repro.scan.TestVector`
objects in application order, plus coverage statistics.  Seeded and fully
deterministic.
"""

from __future__ import annotations

import contextlib
import dataclasses

import numpy as np

from repro.atpg.collapse import collapse_faults
from repro.atpg.faults import Fault, all_faults
from repro.atpg.faultsim import FaultSimResult
from repro.atpg.podem import PodemEngine, generate_test
from repro.scan.testview import ScanDesign, TestVector
from repro.simulation.backends import Backend
from repro.simulation.bitsim import pack_input_vectors, random_input_words
from repro.simulation.eval2 import comb_input_lines
from repro.simulation.fault_episode import FaultSimSession
from repro.simulation.values import bit_at
from repro.utils.rng import derive_seed, make_rng

__all__ = ["TestSet", "AtpgConfig", "generate_tests"]


@dataclasses.dataclass(frozen=True)
class AtpgConfig:
    """Knobs of the test generation pipeline."""

    seed: int = 0
    random_batch: int = 64
    max_random_batches: int = 16
    min_batch_yield: int = 1      # stop random phase below this many detects
    max_backtracks: int = 100
    podem_batch: int = 32
    compaction: bool = True


@dataclasses.dataclass
class TestSet:
    """A generated scan test set with its bookkeeping."""

    #: keep pytest from collecting this dataclass as a test case
    __test__ = False

    vectors: list[TestVector]
    n_faults: int                  # collapsed universe size
    n_detected: int
    n_untestable: int
    n_aborted: int

    @property
    def fault_coverage(self) -> float:
        """Detected / total (collapsed) faults."""
        if self.n_faults == 0:
            return 1.0
        return self.n_detected / self.n_faults

    @property
    def testable_coverage(self) -> float:
        """Detected / (total - proven untestable)."""
        denom = self.n_faults - self.n_untestable
        if denom <= 0:
            return 1.0
        return self.n_detected / denom

    def summary(self) -> str:
        return (f"{len(self.vectors)} vectors, "
                f"{self.n_detected}/{self.n_faults} faults "
                f"({self.fault_coverage:.1%} coverage, "
                f"{self.n_untestable} untestable, "
                f"{self.n_aborted} aborted)")


def _assignment_to_vector(design: ScanDesign,
                          values: dict[str, int]) -> TestVector:
    pi_values = {pi: values[pi] for pi in design.circuit.inputs}
    scan_state = tuple(values[q] for q in design.chain.q_lines)
    return TestVector(pi_values=pi_values, scan_state=scan_state)


def _vector_to_assignment(design: ScanDesign,
                          vector: TestVector) -> dict[str, int]:
    values = dict(vector.pi_values)
    values.update(design.chain.state_as_dict(vector.scan_state))
    return values


def generate_tests(design: ScanDesign,
                   config: AtpgConfig | None = None,
                   backend: str | Backend | None = None,
                   fault_backend: str | Backend | None = None,
                   fault_plan: bool | None = None,
                   stream_budget: int | None = None) -> TestSet:
    """Generate a compacted stuck-at test set for a full-scan design.

    ``backend`` selects the packed-simulation engine for every fault
    simulation; ``fault_backend`` overrides it for the fault simulations
    specifically (e.g. the ``sharded`` meta-backend for large collapsed
    universes) and defaults to ``backend``.  Results are bit-identical
    across backends, so the generated test set never depends on either.

    All fault simulations run through one persistent
    :class:`~repro.simulation.fault_episode.FaultSimSession` that
    carries the fanout-cone cache and good-machine states across the
    pipeline's batches.  ``fault_plan`` overrides the planned-replay
    toggle for this run (``None`` = session default /
    ``$REPRO_FAULT_PLAN``, default on); the legacy per-batch path is
    the pinned reference and produces the identical test set.
    ``stream_budget`` bounds the session's planned replays out of core
    (``None`` = session default / ``$REPRO_STREAM_BUDGET``, ``0`` off);
    streaming is bit-identical, so the test set never depends on it.

    When the resolved fault engine is a sharding meta-backend that
    would actually split this circuit's collapsed universe, the inner
    fault-simulation loop runs against the process-wide shared worker
    pool (:func:`repro.campaign.pool.ensure_shared_pool`) by default:
    ATPG makes many fault-simulation calls on the same circuit, and
    live workers with interned plan caches beat a fresh fork per call.
    An explicitly attached pool, or an already active shared pool, is
    honoured as-is.
    """
    config = config or AtpgConfig()
    from repro.simulation.backends import (
        ShardedBackend,
        resolve_fault_backend,
    )
    engine = resolve_fault_backend(
        fault_backend if fault_backend is not None else backend)
    circuit = design.circuit
    universe = collapse_faults(circuit, all_faults(circuit))
    pool_ctx: contextlib.AbstractContextManager = contextlib.nullcontext()
    if isinstance(engine, ShardedBackend) and engine.pool is None \
            and engine.effective_shards(len(universe)) > 1:
        from repro.campaign.pool import (
            active_shared_pool,
            ensure_shared_pool,
        )
        if active_shared_pool() is None:
            pool_ctx = engine.using_pool(ensure_shared_pool())
    with pool_ctx:
        session = FaultSimSession(circuit, engine, plan=fault_plan,
                                  stream_budget=stream_budget)
        return _generate_tests(design, config, universe, session)


def _generate_tests(design: ScanDesign, config: AtpgConfig,
                    universe: list[Fault],
                    session: FaultSimSession) -> TestSet:
    """The generation pipeline proper (fault session fully resolved)."""
    circuit = design.circuit
    remaining: list[Fault] = list(universe)
    kept_vectors: list[TestVector] = []
    n_untestable = 0
    aborted: list[Fault] = []

    # ---- phase 1: random patterns ------------------------------------- #
    rng = make_rng(derive_seed(config.seed, f"atpg:{circuit.name}"))
    for _batch in range(config.max_random_batches):
        if not remaining:
            break
        n = config.random_batch
        words = random_input_words(circuit, n, rng)
        result = session.simulate(remaining, words, n, drop=True)
        if len(result.detected) < config.min_batch_yield:
            break
        first_detectors: set[int] = set()
        for word in result.detected.values():
            first_detectors.add((word & -word).bit_length() - 1)
        for t in sorted(first_detectors):
            values = {line: bit_at(words[line], t)
                      for line in comb_input_lines(circuit)}
            kept_vectors.append(_assignment_to_vector(design, values))
        remaining = result.remaining

    # ---- phase 2: PODEM in batches ------------------------------------- #
    engine = PodemEngine(circuit) if remaining else None
    while remaining:
        batch = remaining[:config.podem_batch]
        new_assignments: list[dict[str, int]] = []
        proven_untestable: set[Fault] = set()
        for fault in batch:
            outcome = generate_test(circuit, fault, config.max_backtracks,
                                    engine=engine)
            if outcome.status == "untestable":
                proven_untestable.add(fault)
                n_untestable += 1
            elif outcome.status == "aborted":
                aborted.append(fault)
            else:
                values = dict(outcome.assignment)
                for line in comb_input_lines(circuit):
                    if line not in values:
                        values[line] = int(rng.integers(2))
                new_assignments.append(values)
        handled = set(batch)
        remaining = [f for f in remaining if f not in handled]
        if new_assignments:
            words, n = pack_input_vectors(circuit, new_assignments)
            targets = batch + remaining
            targets = [f for f in targets
                       if f not in proven_untestable and f not in aborted]
            result = session.simulate(targets, words, n, drop=True)
            still = set(result.remaining)
            remaining = [f for f in remaining if f in still]
            kept_vectors.extend(
                _assignment_to_vector(design, values)
                for values in new_assignments)
        # Batch faults neither proven untestable nor detected by the new
        # vectors were aborted or collaterally missed; they are dropped
        # from further generation (counted via `aborted` when applicable).

    # ---- phase 3: reverse-order compaction ----------------------------- #
    matrix: FaultSimResult | None = None
    kept_mask = 0
    if config.compaction and kept_vectors:
        kept_vectors, kept_mask, matrix = _reverse_compact(
            design, universe, kept_vectors, session)

    # final coverage accounting on the kept set
    n_detected = 0
    if kept_vectors:
        if session.plan_enabled and matrix is not None:
            # The no-drop compaction matrix already holds, per fault,
            # the word of detecting vectors; a fault is detected by the
            # compacted set iff that word hits a kept column (per-
            # pattern detection is independent, so this equals the
            # legacy re-simulation bit for bit).
            n_detected = sum(1 for word in matrix.detected.values()
                             if word & kept_mask)
        else:
            # Legacy pinned reference: one more drop-mode pass over the
            # compacted set.
            assignments = [_vector_to_assignment(design, v)
                           for v in kept_vectors]
            words, n = pack_input_vectors(circuit, assignments)
            final = session.simulate(universe, words, n, drop=True)
            n_detected = final.n_detected

    return TestSet(
        vectors=kept_vectors,
        n_faults=len(universe),
        n_detected=n_detected,
        n_untestable=n_untestable,
        n_aborted=len(aborted),
    )


def _reverse_compact(design: ScanDesign, universe: list[Fault],
                     vectors: list[TestVector],
                     session: FaultSimSession
                     ) -> tuple[list[TestVector], int, FaultSimResult]:
    """Reverse-order compaction via one no-drop detection matrix.

    One packed fault simulation of all kept vectors yields, per fault, the
    word of detecting vectors; the reverse greedy pass is then pure bit
    arithmetic.  Returns ``(kept vectors, packed keep mask, matrix)`` so
    the final coverage accounting can be read off the matrix instead of
    re-simulating (plan path).

    The greedy pass itself runs vectorized (numpy bool matrix + column
    reductions) on the planned path and as the original big-int scan on
    the legacy path; both produce the identical keep-set (pinned by
    tests).
    """
    circuit = design.circuit
    assignments = [_vector_to_assignment(design, v) for v in vectors]
    words, n = pack_input_vectors(circuit, assignments)
    matrix = session.simulate(universe, words, n, drop=False)

    if session.plan_enabled:
        keep = _greedy_keep_vectorized(matrix, len(vectors))
    else:
        keep = _greedy_keep_bigint(matrix, len(vectors))
    kept_mask = sum(1 << t for t, k in enumerate(keep) if k)
    return [v for v, k in zip(vectors, keep) if k], kept_mask, matrix


def _greedy_keep_bigint(matrix: FaultSimResult,
                        n_vectors: int) -> list[bool]:
    """Reference reverse-greedy keep-set: big-int column scans."""
    still_uncovered = [word for word in matrix.detected.values() if word]
    keep: list[bool] = [False] * n_vectors
    for t in range(n_vectors - 1, -1, -1):
        bit = 1 << t
        hits = [w for w in still_uncovered if w & bit]
        if hits:
            keep[t] = True
            still_uncovered = [w for w in still_uncovered if not (w & bit)]
        if not still_uncovered:
            break
    return keep


def _greedy_keep_vectorized(matrix: FaultSimResult,
                            n_vectors: int) -> list[bool]:
    """Vectorized reverse-greedy keep-set (numpy bool matrix).

    The detection words become a ``(faults, vectors)`` bool matrix once;
    each reverse step is then one column AND / row update instead of an
    O(faults) Python list scan per vector.  Identical keep-set to
    :func:`_greedy_keep_bigint` by construction (the same faults are
    covered and removed at every step).
    """
    words = [word for word in matrix.detected.values() if word]
    keep = [False] * n_vectors
    if not words:
        return keep
    n_bytes = (n_vectors + 7) // 8
    raw = b"".join(word.to_bytes(n_bytes, "little") for word in words)
    packed = np.frombuffer(raw, dtype=np.uint8).reshape(len(words),
                                                        n_bytes)
    bits = np.unpackbits(packed, axis=1,
                         bitorder="little")[:, :n_vectors].astype(bool)
    uncovered = np.ones(len(words), dtype=bool)
    for t in range(n_vectors - 1, -1, -1):
        column = bits[:, t]
        if (column & uncovered).any():
            keep[t] = True
            uncovered &= ~column
        if not uncovered.any():
            break
    return keep
