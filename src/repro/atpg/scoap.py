"""SCOAP testability measures (Goldstein 1979).

Classic combinational controllability/observability:

* ``CC0(l)`` / ``CC1(l)`` — a lower bound on how many line assignments it
  takes to force line ``l`` to 0 / 1 (inputs cost 1);
* ``CO(l)`` — how many assignments it takes to propagate ``l``'s value to
  an observation point (primary outputs and flop D lines cost 0).

Used here for two things:

* PODEM's backtrace heuristics ("easiest" = cheapest controllability,
  "hardest" = most expensive), which materially cuts backtracking on
  reconvergent circuits;
* standalone testability reporting (`testability_report`).

Conventions: constants have zero cost for their own value and
:data:`INFINITE_COST` for the impossible one; unobservable lines get
:data:`INFINITE_COST` observability.
"""

from __future__ import annotations

import dataclasses

from repro.atpg.faults import observable_lines
from repro.netlist.circuit import Circuit
from repro.netlist.gates import GateType
from repro.simulation.eval2 import comb_input_lines

__all__ = ["ScoapMeasures", "compute_scoap", "INFINITE_COST"]

#: Cost assigned to impossible objectives (redundant-by-construction).
INFINITE_COST = 10 ** 9


@dataclasses.dataclass
class ScoapMeasures:
    """SCOAP annotation of one circuit."""

    cc0: dict[str, int]
    cc1: dict[str, int]
    co: dict[str, int]

    def controllability(self, line: str, value: int) -> int:
        """CC0 or CC1 of ``line``."""
        return self.cc1[line] if value else self.cc0[line]

    def hardest_lines(self, n: int = 10) -> list[str]:
        """Lines with the largest combined testability cost."""
        def cost(line: str) -> int:
            return min(self.cc0[line], INFINITE_COST) \
                + min(self.cc1[line], INFINITE_COST) \
                + min(self.co.get(line, INFINITE_COST), INFINITE_COST)
        return sorted(self.cc0, key=cost, reverse=True)[:n]


def _cap(value: int) -> int:
    return min(value, INFINITE_COST)


def _gate_controllability(gtype: GateType, in0: list[int],
                          in1: list[int]) -> tuple[int, int]:
    """(CC0, CC1) of a gate output from its input controllabilities."""
    if gtype is GateType.AND:
        return _cap(min(in0) + 1), _cap(sum(in1) + 1)
    if gtype is GateType.NAND:
        return _cap(sum(in1) + 1), _cap(min(in0) + 1)
    if gtype is GateType.OR:
        return _cap(sum(in0) + 1), _cap(min(in1) + 1)
    if gtype is GateType.NOR:
        return _cap(min(in1) + 1), _cap(sum(in0) + 1)
    if gtype is GateType.NOT:
        return _cap(in1[0] + 1), _cap(in0[0] + 1)
    if gtype in (GateType.BUFF, GateType.DFF):
        return _cap(in0[0] + 1), _cap(in1[0] + 1)
    if gtype in (GateType.XOR, GateType.XNOR):
        # Fold pairwise: cost of parity-0 / parity-1 over the prefix.
        even, odd = in0[0], in1[0]
        for c0, c1 in zip(in0[1:], in1[1:]):
            new_even = min(even + c0, odd + c1)
            new_odd = min(even + c1, odd + c0)
            even, odd = new_even, new_odd
        if gtype is GateType.XNOR:
            even, odd = odd, even
        return _cap(even + 1), _cap(odd + 1)
    if gtype is GateType.MUX2:
        s0, s1 = in0[0], in1[0]
        d0_0, d0_1 = in0[1], in1[1]
        d1_0, d1_1 = in0[2], in1[2]
        cc0 = min(s0 + d0_0, s1 + d1_0) + 1
        cc1 = min(s0 + d0_1, s1 + d1_1) + 1
        return _cap(cc0), _cap(cc1)
    if gtype is GateType.CONST0:
        return 0, INFINITE_COST
    if gtype is GateType.CONST1:
        return INFINITE_COST, 0
    raise ValueError(f"no SCOAP rule for {gtype}")


def _side_cost(gtype: GateType, side0: list[int],
               side1: list[int]) -> int:
    """Cost of setting a gate's *other* inputs to pass one input through."""
    if gtype in (GateType.AND, GateType.NAND):
        return sum(side1)
    if gtype in (GateType.OR, GateType.NOR):
        return sum(side0)
    if gtype in (GateType.XOR, GateType.XNOR):
        return sum(min(a, b) for a, b in zip(side0, side1))
    if gtype in (GateType.NOT, GateType.BUFF, GateType.DFF):
        return 0
    if gtype is GateType.MUX2:
        # conservatively: fix the select (handled per-pin below)
        return 0
    return 0


def compute_scoap(circuit: Circuit) -> ScoapMeasures:
    """Compute CC0/CC1/CO for every line of the combinational test view."""
    cc0: dict[str, int] = {}
    cc1: dict[str, int] = {}
    for line in comb_input_lines(circuit):
        cc0[line] = 1
        cc1[line] = 1
    for line in circuit.topo_order():
        gate = circuit.gates[line]
        in0 = [cc0[s] for s in gate.inputs]
        in1 = [cc1[s] for s in gate.inputs]
        cc0[line], cc1[line] = _gate_controllability(gate.gtype, in0, in1)

    co: dict[str, int] = {line: INFINITE_COST for line in cc0}
    for line in observable_lines(circuit):
        co[line] = 0
    for line in reversed(circuit.topo_order()):
        gate = circuit.gates[line]
        out_co = co[line]
        if out_co >= INFINITE_COST:
            continue
        for pin, src in enumerate(gate.inputs):
            side0 = [cc0[s] for i, s in enumerate(gate.inputs) if i != pin]
            side1 = [cc1[s] for i, s in enumerate(gate.inputs) if i != pin]
            if gate.gtype is GateType.MUX2:
                if pin == 0:      # select: needs differing data? cheap path
                    cost = min(side0[0], side0[1], side1[0], side1[1])
                elif pin == 1:    # d0: select must be 0
                    cost = cc0[gate.inputs[0]]
                else:             # d1: select must be 1
                    cost = cc1[gate.inputs[0]]
            else:
                cost = _side_cost(gate.gtype, side0, side1)
            candidate = _cap(out_co + cost + 1)
            if candidate < co[src]:
                co[src] = candidate
    return ScoapMeasures(cc0=cc0, cc1=cc1, co=co)
