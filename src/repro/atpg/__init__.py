"""Stuck-at ATPG: fault model, collapsing, PODEM, fault simulation.

This package substitutes the ATOM test sets the paper uses [18]: it
produces compact deterministic stuck-at test sets for full-scan circuits.
"""

from repro.atpg.collapse import collapse_faults, equivalence_classes
from repro.atpg.faults import Fault, all_faults, observable_lines
from repro.atpg.faultsim import FaultSimResult, detect_word, fault_simulate
from repro.atpg.generate import AtpgConfig, TestSet, generate_tests
from repro.atpg.podem import PodemResult, generate_test

__all__ = [
    "Fault",
    "all_faults",
    "observable_lines",
    "collapse_faults",
    "equivalence_classes",
    "FaultSimResult",
    "detect_word",
    "fault_simulate",
    "PodemResult",
    "generate_test",
    "AtpgConfig",
    "TestSet",
    "generate_tests",
]
