"""repro — reproduction of "Simultaneous Reduction of Dynamic and Static
Power in Scan Structures" (Sharifi et al., DATE 2005).

The package implements the paper's proposed low-power scan structure (MUXes
on non-critical pseudo-inputs plus a leakage-observability-directed
transition-blocking input pattern) together with every substrate it needs:
netlists, technology mapping, device-level leakage characterisation, logic
simulation, static timing, scan insertion, ATPG and power estimation.

Quickstart::

    from repro import load_circuit, ProposedFlow, FlowConfig
    circuit = load_circuit("s344")
    result = ProposedFlow(FlowConfig(seed=1)).run(circuit)
    print(result.summary())

The experiment harnesses that regenerate the paper's Table I and Figure 2
live in :mod:`repro.experiments` and are exposed through ``python -m repro``.
"""

__version__ = "1.0.0"

__all__ = ["__version__"]


def __getattr__(name: str):
    """Lazy re-exports of the public API (keeps import time low)."""
    if name.startswith("_"):
        # Never recurse while the _api submodule itself is being imported.
        raise AttributeError(
            f"module 'repro' has no attribute {name!r}")
    import importlib

    api = importlib.import_module("repro._api")
    try:
        return getattr(api, name)
    except AttributeError:
        raise AttributeError(
            f"module 'repro' has no attribute {name!r}") from None


def __dir__() -> list[str]:
    import importlib

    api = importlib.import_module("repro._api")
    return sorted(set(__all__) | set(api.__all__))
