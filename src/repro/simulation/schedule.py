"""Levelized evaluation schedules for batched logic simulation.

A :class:`LevelizedSchedule` flattens a circuit's combinational part into
integer-indexed *batches*: all gates sharing the same logic level, gate
type and arity are grouped into one :class:`GateBatch` whose input and
output line indices are dense numpy arrays.  A vectorized backend can then
evaluate every gate of a batch in a single array operation; because level
``L`` gates only read lines of levels ``< L`` and batches are emitted in
ascending level order, executing the batches sequentially is a valid
topological schedule.

On top of the plain batches the schedule also emits a *fused* program:
all AND-family gates of one level (AND/NAND/OR/NOR/NOT/BUFF, any arity)
collapse into a single :class:`FusedAndBatch`.  Each such gate is an
AND of optionally-inverted inputs with an optionally-inverted output
(De Morgan), so one padded gather + masked AND-reduce evaluates the whole
level regardless of the type/arity mix; short gates are padded with a
dedicated constant-ones row (the AND identity).  This keeps the number of
array operations proportional to circuit *depth*, not to the number of
distinct (type, arity) buckets.

Schedules are pure derived data.  :func:`cached_schedule` memoizes them
per circuit object, keyed on :attr:`Circuit.version` so mutations
invalidate the cache automatically.
"""

from __future__ import annotations

import dataclasses
import weakref
from collections import defaultdict

import numpy as np

from repro.netlist.circuit import Circuit
from repro.netlist.gates import GateType
from repro.simulation.eval2 import comb_input_lines

__all__ = ["GateBatch", "FusedAndBatch", "TypeGroup", "LevelizedSchedule",
           "build_schedule", "cached_schedule", "AND_FAMILY"]

#: Gate types expressible as AND-of-literals with an output literal.
#: (input inversion mask, output inversion) per type.
AND_FAMILY: dict[GateType, tuple[bool, bool]] = {
    GateType.AND: (False, False),
    GateType.NAND: (False, True),
    GateType.OR: (True, True),
    GateType.NOR: (True, False),
    GateType.NOT: (True, False),
    GateType.BUFF: (False, False),
}


@dataclasses.dataclass(frozen=True)
class GateBatch:
    """All gates of one (level, type, arity) bucket, as index arrays.

    Attributes
    ----------
    gtype:
        Gate type shared by the batch.
    level:
        Logic level shared by the batch.
    outputs:
        ``(n_gates,)`` int array of output line indices.
    inputs:
        ``(arity, n_gates)`` int array; column ``g`` holds the input line
        indices of gate ``g`` in pin order.
    """

    gtype: GateType
    level: int
    outputs: np.ndarray
    inputs: np.ndarray

    @property
    def arity(self) -> int:
        return self.inputs.shape[0]

    def __len__(self) -> int:
        return len(self.outputs)


@dataclasses.dataclass(frozen=True)
class FusedAndBatch:
    """Every AND-family gate of one level as a single padded kernel.

    A gate ``out = g(x1..xk)`` with ``g`` in :data:`AND_FAMILY` is
    rewritten ``out = invert_out(AND_j invert_in(x_j))``; gates shorter
    than the level's maximum arity are padded with the constant-ones row
    (index :attr:`LevelizedSchedule.ones_index`, inversion off).

    Attributes
    ----------
    level:
        Logic level shared by the batch.
    outputs:
        ``(n_gates,)`` output line indices.
    inputs:
        ``(arity, n_gates)`` padded input line indices.
    invert_in:
        ``(arity, n_gates, 1)`` ``uint64`` mask — all-ones where the pin
        is inverted, zero otherwise (XOR-ready against packed rows).
    invert_out:
        ``(n_gates, 1)`` ``uint64`` mask for the output literal.
    """

    level: int
    outputs: np.ndarray
    inputs: np.ndarray
    invert_in: np.ndarray
    invert_out: np.ndarray

    @property
    def arity(self) -> int:
        return self.inputs.shape[0]

    def __len__(self) -> int:
        return len(self.outputs)


@dataclasses.dataclass(frozen=True)
class TypeGroup:
    """All gates of one (type, arity) bucket, ignoring levels.

    Order-free per-gate computations (leakage pricing, statistics) batch
    on these instead of the level-split :class:`GateBatch` list, which
    keeps the number of array operations independent of circuit depth.
    """

    gtype: GateType
    outputs: np.ndarray
    inputs: np.ndarray

    @property
    def arity(self) -> int:
        return self.inputs.shape[0]

    def __len__(self) -> int:
        return len(self.outputs)


@dataclasses.dataclass(frozen=True)
class LevelizedSchedule:
    """A circuit's combinational part as dense, batched index arrays.

    Attributes
    ----------
    lines:
        Every simulated line, combinational inputs first, then gate
        outputs in topological order.  Index into this tuple = the line's
        row in a backend's state matrix.
    line_index:
        Inverse of ``lines``.
    input_lines:
        The combinational inputs (primary inputs + DFF outputs), i.e. the
        first ``len(input_lines)`` entries of ``lines``.
    batches:
        Topologically valid evaluation order, one entry per
        (level, type, arity) bucket, ascending level.
    fused_program:
        The same gates with every level's AND-family bucket collapsed
        into one :class:`FusedAndBatch`; non-AND-family gates keep their
        plain :class:`GateBatch`.  Ascending level order, topologically
        valid.
    type_groups:
        Level-free (type, arity) buckets over the same gates.
    version:
        ``Circuit.version`` this schedule was built from.
    """

    lines: tuple[str, ...]
    line_index: dict[str, int]
    input_lines: tuple[str, ...]
    batches: tuple[GateBatch, ...]
    fused_program: tuple[GateBatch | FusedAndBatch, ...]
    type_groups: tuple[TypeGroup, ...]
    version: int

    @property
    def n_lines(self) -> int:
        return len(self.lines)

    @property
    def ones_index(self) -> int:
        """Row index of the constant-ones padding word (one past lines)."""
        return len(self.lines)

    @property
    def n_gates(self) -> int:
        return sum(len(batch) for batch in self.batches)


def build_schedule(circuit: Circuit) -> LevelizedSchedule:
    """Levelize ``circuit`` and group its gates into evaluation batches."""
    inputs = tuple(comb_input_lines(circuit))
    topo = circuit.topo_order()
    lines = inputs + tuple(topo)
    line_index = {line: i for i, line in enumerate(lines)}

    buckets: dict[tuple[int, str, int], list[str]] = defaultdict(list)
    for line in topo:
        gate = circuit.gates[line]
        key = (circuit.level_of(line), gate.gtype.value, len(gate.inputs))
        buckets[key].append(line)

    def index_arrays(outs: list[str]) -> tuple[np.ndarray, np.ndarray]:
        out_idx = np.array([line_index[o] for o in outs], dtype=np.intp)
        arity = len(circuit.gates[outs[0]].inputs)
        in_idx = np.array(
            [[line_index[src] for src in circuit.gates[o].inputs]
             for o in outs],
            dtype=np.intp).reshape(len(outs), arity).T
        return out_idx, np.ascontiguousarray(in_idx)

    batches = []
    for (level, gtype_value, _arity), outs in sorted(buckets.items()):
        out_idx, in_idx = index_arrays(outs)
        batches.append(GateBatch(gtype=GateType(gtype_value), level=level,
                                 outputs=out_idx, inputs=in_idx))

    ones_index = len(lines)
    fused: list[GateBatch | FusedAndBatch] = []
    by_level: dict[int, list[GateBatch]] = defaultdict(list)
    for batch in batches:
        by_level[batch.level].append(batch)
    for level in sorted(by_level):
        andish = [b for b in by_level[level] if b.gtype in AND_FAMILY]
        fused.extend(b for b in by_level[level] if b.gtype not in AND_FAMILY)
        if not andish:
            continue
        n_gates = sum(len(b) for b in andish)
        arity = max(b.arity for b in andish)
        out_idx = np.empty(n_gates, dtype=np.intp)
        in_idx = np.full((arity, n_gates), ones_index, dtype=np.intp)
        inv_in = np.zeros((arity, n_gates, 1), dtype="<u8")
        inv_out = np.zeros((n_gates, 1), dtype="<u8")
        all_ones = np.uint64(0xFFFFFFFFFFFFFFFF)
        pos = 0
        for b in andish:
            stop = pos + len(b)
            out_idx[pos:stop] = b.outputs
            in_idx[:b.arity, pos:stop] = b.inputs
            in_inverted, out_inverted = AND_FAMILY[b.gtype]
            if in_inverted:
                inv_in[:b.arity, pos:stop, 0] = all_ones
            if out_inverted:
                inv_out[pos:stop, 0] = all_ones
            pos = stop
        fused.append(FusedAndBatch(level=level, outputs=out_idx,
                                   inputs=in_idx, invert_in=inv_in,
                                   invert_out=inv_out))

    type_buckets: dict[tuple[str, int], list[str]] = defaultdict(list)
    for line in topo:
        gate = circuit.gates[line]
        type_buckets[(gate.gtype.value, len(gate.inputs))].append(line)
    groups = []
    for (gtype_value, _arity), outs in sorted(type_buckets.items()):
        out_idx, in_idx = index_arrays(outs)
        groups.append(TypeGroup(gtype=GateType(gtype_value),
                                outputs=out_idx, inputs=in_idx))

    return LevelizedSchedule(
        lines=lines,
        line_index=line_index,
        input_lines=inputs,
        batches=tuple(batches),
        fused_program=tuple(fused),
        type_groups=tuple(groups),
        version=circuit.version,
    )


_SCHEDULE_CACHE: "weakref.WeakKeyDictionary[Circuit, LevelizedSchedule]" = \
    weakref.WeakKeyDictionary()


def cached_schedule(circuit: Circuit) -> LevelizedSchedule:
    """Memoized :func:`build_schedule`, invalidated by circuit mutation."""
    schedule = _SCHEDULE_CACHE.get(circuit)
    if schedule is None or schedule.version != circuit.version:
        schedule = build_schedule(circuit)
        _SCHEDULE_CACHE[circuit] = schedule
    return schedule
