"""Bit-parallel two-valued simulation over packed pattern words.

Each combinational input gets an N-bit word (bit ``t`` = value in pattern
``t``); every line's waveform is computed with big-int bitwise operations.
This backs fault simulation, Monte-Carlo leakage observability and the
scan-shift power evaluation.

This module holds the *reference* big-int engine; the public
:func:`simulate_packed` dispatches to the selected simulation backend
(see :mod:`repro.simulation.backends`), all of which reproduce the
reference results bit-for-bit.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence

import numpy as np

from repro.errors import SimulationError
from repro.netlist.circuit import Circuit
from repro.netlist.gates import GateType
from repro.simulation.eval2 import comb_input_lines
from repro.simulation.values import mask, pack_bits

__all__ = ["simulate_packed", "pack_input_vectors", "random_input_words",
           "eval_gate_packed"]


def eval_gate_packed(gtype: GateType, words: Sequence[int],
                     full: int) -> int:
    """Evaluate one gate over packed waveforms; ``full`` is the N-bit mask."""
    if gtype is GateType.AND or gtype is GateType.NAND:
        acc = full
        for w in words:
            acc &= w
        return acc if gtype is GateType.AND else acc ^ full
    if gtype is GateType.OR or gtype is GateType.NOR:
        acc = 0
        for w in words:
            acc |= w
        return acc if gtype is GateType.OR else acc ^ full
    if gtype is GateType.NOT:
        return words[0] ^ full
    if gtype in (GateType.BUFF, GateType.DFF):
        return words[0]
    if gtype is GateType.XOR or gtype is GateType.XNOR:
        acc = 0
        for w in words:
            acc ^= w
        return acc if gtype is GateType.XOR else acc ^ full
    if gtype is GateType.MUX2:
        sel, d0, d1 = words
        return ((sel ^ full) & d0) | (sel & d1)
    if gtype is GateType.CONST0:
        return 0
    if gtype is GateType.CONST1:
        return full
    raise SimulationError(f"cannot evaluate {gtype} in packed mode")


def _simulate_packed_bigint(circuit: Circuit,
                            input_words: Mapping[str, int],
                            n: int) -> dict[str, int]:
    """The raw big-int reference engine (no backend dispatch)."""
    full = mask(n)
    words: dict[str, int] = {}
    for line in comb_input_lines(circuit):
        try:
            word = input_words[line]
        except KeyError:
            raise SimulationError(
                f"missing packed input for line {line!r}") from None
        if word < 0 or word > full:
            raise SimulationError(
                f"line {line!r}: word out of range for {n} patterns")
        words[line] = word
    for line in circuit.topo_order():
        gate = circuit.gates[line]
        words[line] = eval_gate_packed(
            gate.gtype, [words[src] for src in gate.inputs], full)
    return words


def simulate_packed(circuit: Circuit, input_words: Mapping[str, int],
                    n: int, backend: object | None = None
                    ) -> dict[str, int]:
    """Simulate ``n`` packed patterns; returns a word for every line.

    ``input_words`` must assign a word to every combinational input
    (primary inputs and DFF outputs); bits above position ``n-1`` must be
    zero (checked cheaply via the mask).

    ``backend`` selects the simulation engine — a backend name, a
    :class:`~repro.simulation.backends.Backend` instance, or ``None`` for
    the session default (see
    :func:`repro.simulation.backends.set_default_backend`).  Results are
    bit-identical across backends.
    """
    from repro.simulation.backends import resolve_backend
    return resolve_backend(backend).simulate_packed(circuit, input_words, n)


def pack_input_vectors(circuit: Circuit,
                       vectors: Sequence[Mapping[str, int]]
                       ) -> tuple[dict[str, int], int]:
    """Pack per-pattern input dicts into per-line words.

    Returns ``(input_words, n)`` ready for :func:`simulate_packed`.
    """
    lines = comb_input_lines(circuit)
    words = {
        line: pack_bits(vec[line] for vec in vectors) for line in lines
    }
    return words, len(vectors)


def random_input_words(circuit: Circuit, n: int,
                       rng: np.random.Generator) -> dict[str, int]:
    """Uniform random packed stimulus for every combinational input."""
    full = mask(n)
    n_bytes = (n + 7) // 8
    words: dict[str, int] = {}
    for line in comb_input_lines(circuit):
        raw = rng.bytes(n_bytes)
        words[line] = int.from_bytes(raw, "little") & full
    return words
