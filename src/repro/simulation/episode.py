"""Episode planning: whole-test-set scan replay as one stimulus matrix.

The paper's Table I / Figure 2 measurements replay scan *episodes*: per
test vector, ``L`` shift cycles (the previous response shifts out while
the next vector shifts in) followed by one capture cycle.  The legacy
builder in :mod:`repro.power.scanpower` assembled those waveforms with
per-vector, per-cycle, per-line Python loops and one
:func:`~repro.scan.testview.ScanDesign.capture` simulation per vector —
so a vectorized backend only ever accelerated the innermost simulation
step.

This module compiles a :class:`~repro.scan.testview.ScanDesign` plus a
full test set into a single :class:`EpisodePlan`:

* all capture responses are computed in **one** packed simulation
  (``n_vectors`` patterns) instead of one scalar simulation per vector;
* the intermediate chain states of every shift cycle are generated as
  one numpy tensor (the shift register is an index mapping, not a loop);
* every line's stimulus over the whole episode sequence is packed into
  one interchange word, episode-major, with per-episode offsets so
  consumers can slice any vector's segment back out.

``Backend.simulate_episode_batch(plan)`` then evaluates the whole test
set's replay in a single backend pass (one ``uint64``-matrix pass on the
numpy engine) and returns an :class:`EpisodeBatchResult`; the ``sharded``
meta-backend splits the *pattern/cycle axis* of oversized plans under a
memory budget and merges chunk results with integer-exact arithmetic.

Everything stays bit-identical to the legacy per-episode path: the plan's
packed words equal the loop-built waveforms bit for bit, so transitions,
leakage sums and every derived power metric follow.  The differential
property tests in ``tests/properties`` pin this across backends and
shard counts.

The batched path is on by default; ``$REPRO_EPISODE_BATCH`` (``0``/``1``)
or the per-call ``episode_batch=`` argument override it (the CLI's
``--episode-batch on|off`` flag sets the same knob per run).
"""

from __future__ import annotations

import dataclasses
from collections.abc import Mapping, Sequence
from typing import TYPE_CHECKING

import numpy as np

from repro.errors import ScanError
from repro.netlist.circuit import Circuit
from repro.obs.trace import traced

if TYPE_CHECKING:  # pragma: no cover - import cycle broken at runtime
    from repro.scan.testview import ScanDesign, TestVector
    from repro.simulation.backends import Backend

__all__ = [
    "EpisodePlan",
    "EpisodeBatchResult",
    "compile_episode_plan",
    "episode_batching_enabled",
    "set_default_episode_batching",
    "DEFAULT_EPISODE_BATCH_ENV",
]

#: Environment variable toggling the batched episode engine (``1`` on,
#: ``0`` off; unset = on).
DEFAULT_EPISODE_BATCH_ENV = "REPRO_EPISODE_BATCH"


def set_default_episode_batching(flag: bool | None) -> None:
    """Deprecated: install the session-default episode-batching switch.

    Thin shim over the unified runtime-options surface — use
    ``repro.runtime.set_session_defaults(episode_batch=flag)`` (or the
    :func:`repro.runtime.using` context manager) instead.  ``None``
    resets to the environment/built-in default.
    """
    from repro.runtime import _deprecated_setter
    _deprecated_setter("set_default_episode_batching", "episode_batch",
                       flag)


def episode_batching_enabled(flag: bool | None = None) -> bool:
    """Resolve the episode-batching switch.

    An explicit ``flag`` wins, then the session default
    (:attr:`repro.runtime.RuntimeOptions.episode_batch`), then
    ``$REPRO_EPISODE_BATCH``, defaulting to **on** (the batched path is
    bit-identical to the legacy loop, so only speed changes).
    """
    from repro.runtime import session_defaults
    from repro.simulation.toggles import resolve_toggle
    return resolve_toggle(DEFAULT_EPISODE_BATCH_ENV, flag,
                          session_defaults().episode_batch)


@dataclasses.dataclass(frozen=True)
class EpisodePlan:
    """A whole test set's scan replay as one packed stimulus.

    Attributes
    ----------
    circuit:
        The circuit the stimulus drives (combinational part).
    waveforms:
        Per-line packed interchange words covering every episode's
        cycles back to back — bit-identical to the legacy per-episode
        waveform builder's output.
    n_cycles:
        Total cycle count over all episodes.
    offsets:
        Start cycle of each episode (one per test vector).
    lengths:
        Cycle count of each episode (chain length, plus one when the
        capture cycle is included).
    """

    circuit: Circuit
    waveforms: dict[str, int]
    n_cycles: int
    offsets: tuple[int, ...]
    lengths: tuple[int, ...]

    @property
    def n_episodes(self) -> int:
        return len(self.offsets)

    @property
    def n_words(self) -> int:
        """``uint64`` words per packed waveform row."""
        return (self.n_cycles + 63) // 64

    def state_elements(self) -> int:
        """``uint64`` elements of the plan's resident state matrix.

        The budget currency shared by the sharded backend's
        ``episode_budget`` and the streaming ``stream_budget``: every
        stimulus line plus every gate output plus the padding row,
        times the packed word count.
        """
        from repro.simulation.streaming import state_elements
        return state_elements(len(self.waveforms), self.circuit,
                              self.n_cycles)

    def episode_bounds(self) -> list[tuple[int, int]]:
        """``[start, stop)`` cycle range of every episode."""
        return [(start, start + length)
                for start, length in zip(self.offsets, self.lengths)]


@dataclasses.dataclass
class EpisodeBatchResult:
    """Outcome of one batched episode simulation.

    Mirrors :class:`~repro.simulation.cyclesim.CycleSimResult` (same
    accounting, same float semantics) plus the episode geometry so
    consumers can slice per-vector segments out of the batch.
    """

    n_cycles: int
    transitions: dict[str, int]
    leakage_sum_na: dict[str, float]
    offsets: tuple[int, ...]
    lengths: tuple[int, ...]
    waveforms: dict[str, int] | None = None

    @property
    def total_transitions(self) -> int:
        """Sum of transitions over all lines."""
        return sum(self.transitions.values())

    @property
    def mean_leakage_na(self) -> float:
        """Average total leakage current (nA) over all cycles."""
        if self.n_cycles == 0:
            return 0.0
        return sum(self.leakage_sum_na.values()) / self.n_cycles


def _pack_word(bits: np.ndarray) -> int:
    """Pack a flat 0/1 array into one interchange word (bit 0 first)."""
    return int.from_bytes(
        np.packbits(bits, bitorder="little").tobytes(), "little")


def _bit_column(values: Sequence[int]) -> np.ndarray:
    return np.asarray(values, dtype=np.uint8)


@traced("plan.compile_episode")
def compile_episode_plan(design: "ScanDesign",
                         vectors: "Sequence[TestVector]", *,
                         pi_values: Mapping[str, int] | None = None,
                         mux_ties: Mapping[str, int] | None = None,
                         include_capture: bool = True,
                         initial_state: Sequence[int] | None = None,
                         backend: "str | Backend | None" = None
                         ) -> EpisodePlan:
    """Compile a design + test set into one :class:`EpisodePlan`.

    ``pi_values``/``mux_ties`` carry the shift policy (see
    :class:`~repro.power.scanpower.ShiftPolicy`): constants driven on
    primary inputs / muxed pseudo-inputs while shifting.  The capture
    responses feeding each next episode's shift-out are computed in one
    packed simulation on ``backend`` (resolved once; a meta backend
    delegates to its inner engine).

    The packed words are bit-identical to the legacy per-episode
    builder for every input; the shift protocol itself is generated
    from the chain's index mapping, whose "last state equals the
    vector" invariant holds by construction.
    """
    from repro.simulation.backends import resolve_backend

    circuit = design.circuit
    chain = design.chain
    if not vectors:
        raise ScanError("empty test set")
    mux_ties = dict(mux_ties or {})
    unknown_mux = set(mux_ties) - set(chain.q_lines)
    if unknown_mux:
        raise ScanError(f"mux ties on unknown cells: {sorted(unknown_mux)}")
    for name, value in mux_ties.items():
        if value not in (0, 1):
            raise ScanError(f"mux tie for {name!r} must be 0/1")
    if pi_values:
        for name, value in pi_values.items():
            if value not in (0, 1):
                raise ScanError(f"policy PI value for {name!r} must be 0/1")

    n_vec = len(vectors)
    length = chain.length
    state0 = tuple(initial_state) if initial_state is not None \
        else (0,) * length
    if len(state0) != length:
        raise ScanError("initial state length mismatch")
    if any(bit not in (0, 1) for bit in state0):
        raise ScanError("initial state bits must be 0/1")

    scan_matrix = np.empty((n_vec, length), dtype=np.uint8)
    for i, vector in enumerate(vectors):
        if len(vector.scan_state) != length:
            raise ScanError("test vector scan state length mismatch")
        scan_matrix[i] = vector.scan_state

    # Capture responses of all vectors in one packed pass; episode i's
    # shift-out state is the response captured from vector i - 1.
    prev = np.empty((n_vec, length), dtype=np.uint8)
    prev[0] = state0
    if n_vec > 1:
        engine = resolve_backend(backend)
        capture_words = {
            pi: _pack_word(_bit_column([v.pi_values[pi] for v in vectors]))
            for pi in circuit.inputs
        }
        for position, q_line in enumerate(chain.q_lines):
            capture_words[q_line] = _pack_word(scan_matrix[:, position])
        state = engine.run(circuit, capture_words, n_vec)
        for position, d_line in enumerate(chain.d_lines):
            prev[1:, position] = state.bools(d_line)[:-1]

    # Chain state after shift t (1-based) of episode i, cell position p:
    # the low t positions hold the vector's tail, the rest the previous
    # response still shifting out.  With j = t - 1:
    #   state[p] = vector[length - 1 - j + p]  when j >= p
    #   state[p] = prev[p - j - 1]             when j <  p
    # Index matrices are (cycle, cell); the shift bits themselves are
    # materialized one cell column at a time below, keeping the
    # transient working set O(n_vec x length) instead of the full
    # (n_vec, length, length) tensor.
    cycle = np.arange(length)[:, None]
    position = np.arange(length)[None, :]
    from_vector = cycle >= position
    vector_index = np.where(from_vector,
                            length - 1 - cycle + position, 0)
    prev_index = np.where(from_vector, 0, position - cycle - 1)

    def shift_column(p: int) -> np.ndarray:
        """Cell ``p``'s value over every shift cycle: (n_vec, length)."""
        return np.where(from_vector[:, p][None, :],
                        scan_matrix[:, vector_index[:, p]],
                        prev[:, prev_index[:, p]])

    per_episode = length + (1 if include_capture else 0)
    waveforms: dict[str, int] = {}
    for pi in circuit.inputs:
        test_bits = _bit_column([v.pi_values[pi] for v in vectors])
        if pi_values is not None and pi in pi_values:
            shift_value = np.full(n_vec, pi_values[pi], dtype=np.uint8)
        else:
            shift_value = test_bits
        bits = np.empty((n_vec, per_episode), dtype=np.uint8)
        bits[:, :length] = shift_value[:, None]
        if include_capture:
            bits[:, length] = test_bits
        waveforms[pi] = _pack_word(bits.reshape(-1))
    for p, cell in enumerate(chain.cells):
        tie = mux_ties.get(cell.q)
        bits = np.empty((n_vec, per_episode), dtype=np.uint8)
        bits[:, :length] = tie if tie is not None else shift_column(p)
        if include_capture:
            bits[:, length] = scan_matrix[:, p]
        waveforms[cell.q] = _pack_word(bits.reshape(-1))

    return EpisodePlan(
        circuit=circuit,
        waveforms=waveforms,
        n_cycles=n_vec * per_episode,
        offsets=tuple(range(0, n_vec * per_episode, per_episode)),
        lengths=(per_episode,) * n_vec,
    )
