"""Multi-cycle waveform simulation with transition and leakage accounting.

This is the engine behind the paper's Table I measurements: given the
per-cycle waveforms of the combinational inputs over a whole scan episode
(every shift clock of every test vector), it computes

* the waveform of every internal line (packed words, one bit per cycle),
* per-line transition counts (for dynamic energy, paper eq. 1),
* per-gate leakage accumulated over all cycles via per-pattern cycle
  counts (for average static power) — O(2^k) popcounts per gate instead
  of a per-cycle table walk.

Zero-delay (cycle-accurate) semantics: within a cycle the combinational
logic settles instantly; transitions are counted between consecutive
settled states.  This matches the transition-count power model used by the
paper and its baseline [8].

The heavy lifting (waveform evaluation, popcounts) is delegated to the
selected simulation backend (:mod:`repro.simulation.backends`); all
backends return identical numbers.
"""

from __future__ import annotations

import dataclasses
from collections.abc import Mapping

from repro.cells.library import CellLibrary, default_library
from repro.netlist.circuit import Circuit
from repro.simulation.backends import Backend, resolve_backend

__all__ = ["CycleSimResult", "simulate_cycles"]


@dataclasses.dataclass
class CycleSimResult:
    """Outcome of a multi-cycle simulation.

    Attributes
    ----------
    n_cycles:
        Number of simulated cycles.
    transitions:
        Per-line transition count across consecutive cycles.
    leakage_sum_na:
        Per-gate-output sum over cycles of the cell's leakage (nA); divide
        by ``n_cycles`` for the average.  Only combinational gates appear.
    waveforms:
        Per-line packed waveforms (kept only when requested).
    """

    n_cycles: int
    transitions: dict[str, int]
    leakage_sum_na: dict[str, float]
    waveforms: dict[str, int] | None = None

    @property
    def total_transitions(self) -> int:
        """Sum of transitions over all lines."""
        return sum(self.transitions.values())

    @property
    def mean_leakage_na(self) -> float:
        """Average total leakage current (nA) over the episode."""
        if self.n_cycles == 0:
            return 0.0
        return sum(self.leakage_sum_na.values()) / self.n_cycles


def simulate_cycles(circuit: Circuit, input_waveforms: Mapping[str, int],
                    n_cycles: int, library: CellLibrary | None = None,
                    collect_leakage: bool = True,
                    keep_waveforms: bool = False,
                    backend: str | Backend | None = None) -> CycleSimResult:
    """Simulate ``n_cycles`` consecutive combinational states.

    Parameters
    ----------
    circuit:
        Circuit whose combinational part is simulated.
    input_waveforms:
        Packed per-cycle waveform for every primary input and DFF output
        (constant inputs are ``0`` or ``mask(n_cycles)``).
    library:
        Cell library supplying the leakage tables.
    collect_leakage:
        Skip the (comparatively expensive) per-pattern popcounts when the
        caller only needs transitions.
    keep_waveforms:
        Retain all line waveforms on the result (memory proportional to
        lines x cycles / 8 bytes).
    backend:
        Simulation backend (name, instance or ``None`` for the session
        default); numerically irrelevant, only affects speed.
    """
    library = library or default_library()
    state = resolve_backend(backend).run(circuit, input_waveforms, n_cycles)

    transitions = state.transitions()
    leakage_sum: dict[str, float] = {}
    if collect_leakage:
        leakage_sum = state.leakage_sum(library)

    return CycleSimResult(
        n_cycles=n_cycles,
        transitions=transitions,
        leakage_sum_na=leakage_sum,
        waveforms=state.words() if keep_waveforms else None,
    )
