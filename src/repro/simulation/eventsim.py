"""Event-driven zero-delay simulator.

A classic selective-trace simulator: apply input changes, propagate only
through affected cones, count the events each line actually takes.  Under
zero-delay semantics its per-cycle settled states must agree with
:mod:`repro.simulation.cyclesim` — a property test enforces that — and its
event counts equal the transition counts, which makes it both a reference
implementation and a teaching aid.
"""

from __future__ import annotations

import heapq
from collections.abc import Mapping

from repro.errors import SimulationError
from repro.netlist.circuit import Circuit
from repro.netlist.gates import SEQUENTIAL_TYPES, eval_gate
from repro.simulation.eval2 import comb_input_lines, simulate_comb

__all__ = ["EventSimulator"]


class EventSimulator:
    """Stateful event-driven simulator over the combinational part.

    Usage::

        sim = EventSimulator(circuit, initial_inputs)
        changed = sim.apply({"pi_a": 1})
        sim.value("some_line")
        sim.event_counts  # per-line events since construction
    """

    def __init__(self, circuit: Circuit, inputs: Mapping[str, int]):
        self._circuit = circuit
        self._values = simulate_comb(circuit, inputs)
        self._events: dict[str, int] = {line: 0 for line in circuit.lines()}

    @property
    def values(self) -> dict[str, int]:
        """Current settled value of every line (do not mutate)."""
        return self._values

    @property
    def event_counts(self) -> dict[str, int]:
        """Per-line number of value changes since construction."""
        return self._events

    def value(self, line: str) -> int:
        """Current value of ``line``."""
        return self._values[line]

    def apply(self, changes: Mapping[str, int]) -> list[str]:
        """Apply new input values and propagate; returns changed lines.

        Only combinational inputs (PIs and DFF outputs) may be driven.
        """
        inputs = set(comb_input_lines(self._circuit))
        pending: list[tuple[int, str]] = []
        queued: set[str] = set()
        changed: list[str] = []

        def enqueue_fanout(line: str) -> None:
            for sink, _pin in self._circuit.fanout(line):
                gate = self._circuit.gates[sink]
                if gate.gtype in SEQUENTIAL_TYPES or sink in queued:
                    continue
                queued.add(sink)
                heapq.heappush(
                    pending, (self._circuit.level_of(sink), sink))

        for line, value in changes.items():
            if line not in inputs:
                raise SimulationError(
                    f"{line!r} is not a combinational input")
            if value not in (0, 1):
                raise SimulationError(f"value {value!r} is not 0/1")
            if self._values[line] != value:
                self._values[line] = value
                self._events[line] += 1
                changed.append(line)
                enqueue_fanout(line)

        while pending:
            _level, line = heapq.heappop(pending)
            queued.discard(line)
            gate = self._circuit.gates[line]
            new_value = eval_gate(
                gate.gtype, [self._values[s] for s in gate.inputs])
            if new_value != self._values[line]:
                self._values[line] = new_value
                self._events[line] += 1
                changed.append(line)
                enqueue_fanout(line)
        return changed
