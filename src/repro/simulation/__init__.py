"""Logic simulation: 2-valued, 3-valued, bit-parallel and event-driven."""

from repro.simulation.backends import (
    Backend,
    SimState,
    available_backends,
    get_backend,
    register_backend,
    resolve_backend,
    set_default_backend,
)
from repro.simulation.bitsim import (
    eval_gate_packed,
    pack_input_vectors,
    random_input_words,
    simulate_packed,
)
from repro.simulation.cyclesim import CycleSimResult, simulate_cycles
from repro.simulation.episode import (
    EpisodeBatchResult,
    EpisodePlan,
    compile_episode_plan,
    episode_batching_enabled,
    set_default_episode_batching,
)
from repro.simulation.eval2 import comb_input_lines, simulate_comb
from repro.simulation.fault_episode import (
    FaultEpisodePlan,
    FaultSimSession,
    compile_fault_episode_plan,
    fault_planning_enabled,
    set_default_fault_planning,
)
from repro.simulation.eval3 import imply_from, simulate_comb3
from repro.simulation.eventsim import EventSimulator
from repro.simulation.schedule import (
    GateBatch,
    LevelizedSchedule,
    build_schedule,
    cached_schedule,
)
from repro.simulation.seqsim import SequentialSimulator
from repro.simulation.vcd import render_vcd, write_vcd
from repro.simulation.values import (
    bit_at,
    count_transitions,
    mask,
    pack_bits,
    pattern_count,
    unpack_bits,
    unpack_bool_array,
)

__all__ = [
    "simulate_comb",
    "comb_input_lines",
    "simulate_comb3",
    "imply_from",
    "simulate_packed",
    "pack_input_vectors",
    "random_input_words",
    "eval_gate_packed",
    "CycleSimResult",
    "simulate_cycles",
    "EpisodePlan",
    "EpisodeBatchResult",
    "compile_episode_plan",
    "episode_batching_enabled",
    "set_default_episode_batching",
    "FaultEpisodePlan",
    "FaultSimSession",
    "compile_fault_episode_plan",
    "fault_planning_enabled",
    "set_default_fault_planning",
    "EventSimulator",
    "SequentialSimulator",
    "render_vcd",
    "write_vcd",
    "mask",
    "pack_bits",
    "unpack_bits",
    "unpack_bool_array",
    "bit_at",
    "count_transitions",
    "pattern_count",
    # backends / scheduling
    "Backend",
    "SimState",
    "available_backends",
    "get_backend",
    "register_backend",
    "resolve_backend",
    "set_default_backend",
    "GateBatch",
    "LevelizedSchedule",
    "build_schedule",
    "cached_schedule",
]
