"""Namespace-parameterized compute kernels (Python array-API style).

The two hot loops of the packed ``uint64`` substrate — the levelized
fused-AND schedule evaluation and the lane-minor 2-D tiled fault
kernel — written against a pluggable array namespace ``xp`` instead of
a hard numpy dependency.  The ``numpy`` backend calls these kernels
with ``xp = numpy``; :class:`repro.simulation.backends.array_api.
ArrayApiBackend` calls them with whatever conforming namespace is
configured (``cupy``, a mock device double, ...), so there is exactly
one kernel implementation shared by every engine.

Division of labour:

* **Host side (always numpy / Python ints):** plan and schedule index
  arrays, big-int <-> packed-row conversion, cone unions, tile
  bookkeeping.  These are tiny ``intp``/``uint64`` metadata arrays; the
  array-API contract is only about the *waveform data*.
* **Device side (``xp``):** every operation that touches waveform
  slabs — gathers, XOR/AND/OR combining, scatter-assignments.  Host
  index arrays cross over via :func:`to_device` (``xp.asarray``, a
  no-op for numpy) and results come back only at merge boundaries via
  :func:`to_host`.

Required ``xp`` surface (the "bring your own accelerator" contract):
``asarray``, ``zeros``, ``empty``, ``where``, ``broadcast_to``,
``reshape`` and a ``uint64`` dtype, plus arrays supporting the bitwise
operators
(``& | ^``, in-place or not), integer-array/slice/``None`` indexing for
``__getitem__``/``__setitem__`` (with broadcasting) and ``.shape``.
Arrays that are not numpy must expose ``get()`` (the cupy idiom) or be
``numpy.asarray``-coercible for the host transfer at merge boundaries.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence
from typing import TYPE_CHECKING, Any

import numpy as np

from repro.errors import SimulationError
from repro.netlist.gates import GateType
from repro.simulation.schedule import FusedAndBatch, LevelizedSchedule

if TYPE_CHECKING:  # pragma: no cover - runtime import would be cyclic
    from repro.atpg.faults import Fault
    from repro.simulation.backends.fault_kernel import FaultSimPlan

__all__ = ["to_device", "to_host", "int_to_row", "row_to_int",
           "initial_state", "eval_gate_rows", "eval_schedule",
           "detect_tile", "TileScratch"]

_U64 = np.dtype("<u8")


# ---------------------------------------------------------------------------
# Host <-> device boundary helpers


def to_device(xp: Any, array: np.ndarray) -> Any:
    """Move a host array into the ``xp`` namespace (no-op for numpy)."""
    return xp.asarray(array)


def to_host(array: Any) -> np.ndarray:
    """Bring a device array back to host numpy (no-op for numpy).

    Non-numpy arrays transfer via ``get()`` (the cupy idiom, also the
    contract of the mocked device double in the test suite) and fall
    back to ``numpy.asarray`` for namespaces without it.
    """
    if isinstance(array, np.ndarray):
        return array
    get = getattr(array, "get", None)
    if get is not None:
        return np.asarray(get())
    return np.asarray(array)


def int_to_row(word: int, n_words: int) -> np.ndarray:
    """Pack a big-int word into a little-endian host ``uint64`` row."""
    return np.frombuffer(word.to_bytes(n_words * 8, "little"), dtype=_U64)


def row_to_int(row: np.ndarray) -> int:
    """Unpack one host ``uint64`` row back into a big-int word."""
    return int.from_bytes(np.ascontiguousarray(row, dtype=_U64).tobytes(),
                          "little")


def initial_state(schedule: LevelizedSchedule,
                  input_words: Mapping[str, int], n: int, n_words: int,
                  full: int, full_row: np.ndarray) -> np.ndarray:
    """Host-side initial waveform matrix for a schedule evaluation.

    Big-int input words are unpacked into the first rows; one extra row
    beyond the named lines holds the constant-ones word the fused AND
    kernels pad short gates with.  Packing big Python ints is host work
    by nature — device backends upload the result once, before the
    levelized sweep.
    """
    from repro.simulation.backends.base import require_input_word

    state = np.zeros((schedule.n_lines + 1, n_words), dtype=_U64)
    state[schedule.ones_index] = full_row
    for i, line in enumerate(schedule.input_lines):
        word = require_input_word(input_words, line, full, n)
        state[i] = int_to_row(word, n_words)
    return state


# ---------------------------------------------------------------------------
# Levelized schedule evaluation


def eval_gate_rows(xp: Any, gtype: GateType, rows: Any, full: Any,
                   out_shape: tuple[int, ...]) -> Any:
    """Evaluate one gate type over stacked waveform rows.

    ``rows`` has shape ``(arity, *out_shape)``; ``full`` broadcasts to
    ``out_shape`` and has every bit above pattern ``n - 1`` clear, which
    keeps the zero-padding of the tail word intact through inversions.
    Reductions run as explicit pin-by-pin folds (the array-API standard
    has no ``ufunc.reduce``); the fold order matches numpy's, so the
    results are bit-identical.
    """
    k = rows.shape[0]
    if gtype is GateType.AND or gtype is GateType.NAND:
        if k:
            acc = rows[0]
            for pin in range(1, k):
                acc = acc & rows[pin]
        else:
            acc = xp.broadcast_to(full, out_shape)
        return acc ^ full if gtype is GateType.NAND else acc
    if gtype is GateType.OR or gtype is GateType.NOR:
        if k:
            acc = rows[0]
            for pin in range(1, k):
                acc = acc | rows[pin]
        else:
            acc = xp.zeros(out_shape, dtype=xp.uint64)
        return acc ^ full if gtype is GateType.NOR else acc
    if gtype is GateType.NOT:
        return rows[0] ^ full
    if gtype is GateType.BUFF or gtype is GateType.DFF:
        return rows[0]
    if gtype is GateType.XOR or gtype is GateType.XNOR:
        if k:
            acc = rows[0]
            for pin in range(1, k):
                acc = acc ^ rows[pin]
        else:
            acc = xp.zeros(out_shape, dtype=xp.uint64)
        return acc ^ full if gtype is GateType.XNOR else acc
    if gtype is GateType.MUX2:
        sel = rows[0]
        d0 = rows[1]
        d1 = rows[2]
        return ((sel ^ full) & d0) | (sel & d1)
    if gtype is GateType.CONST0:
        return xp.zeros(out_shape, dtype=xp.uint64)
    if gtype is GateType.CONST1:
        return xp.broadcast_to(full, out_shape)
    raise SimulationError(f"cannot evaluate {gtype} in packed mode")


def eval_schedule(xp: Any, schedule: LevelizedSchedule, state: Any,
                  full_row: Any) -> Any:
    """Run the fused levelized program in place on ``state``.

    ``state`` is the ``(n_lines + 1, n_words)`` waveform matrix living
    in the ``xp`` namespace, with input rows and the constant-ones
    padding row already settled (:func:`initial_state`); ``full_row``
    is the device copy of the pattern mask.  Fused AND-family batches
    accumulate pin by pin — the first literal seeds the accumulator, so
    no intermediate ``(arity, gates, words)`` gather is materialized —
    and every other batch dispatches through :func:`eval_gate_rows`.
    The fold order equals numpy's ``bitwise_and.reduce``, keeping the
    matrix bit-identical across namespaces.
    """
    for batch in schedule.fused_program:
        if isinstance(batch, FusedAndBatch):
            outputs = to_device(xp, batch.outputs)
            if batch.arity:
                inputs = to_device(xp, batch.inputs)      # (A, G)
                inv_in = to_device(xp, batch.invert_in)   # (A, G, 1)
                acc = state[inputs[0]] ^ inv_in[0]        # (G, W), owned
                for pin in range(1, batch.arity):
                    acc &= state[inputs[pin]] ^ inv_in[pin]
            else:
                # Empty AND is the identity: every gate reads all-ones.
                acc = xp.broadcast_to(full_row,
                                      (len(batch),) + full_row.shape)
            acc = acc ^ to_device(xp, batch.invert_out)   # (G, 1) mask
            acc &= full_row
            state[outputs] = acc
        else:
            rows = state[to_device(xp, batch.inputs)]
            state[to_device(xp, batch.outputs)] = eval_gate_rows(
                xp, batch.gtype, rows, full_row, rows.shape[1:])
    return state


# ---------------------------------------------------------------------------
# Lane-minor tiled fault kernel


class TileScratch:
    """Reusable device scratch for the tiled fault kernel.

    The lane-minor ``faulty`` matrix is by far the largest allocation
    of a tile replay; under a fixed element budget every tile fits the
    same capacity, so one flat buffer serves the whole fault sweep —
    each tile takes a reshaped view of its own element count instead of
    allocating afresh (allocation churn shows up in traces on big
    tiles).  The buffer only ever grows, so peak memory equals the
    single largest tile, exactly as with per-tile allocation.  Reuse is
    bit-transparent: :func:`detect_tile` overwrites every element of
    its view before reading it.
    """

    def __init__(self, xp: Any):
        self._xp = xp
        self._flat: Any = None

    def faulty(self, shape: tuple[int, int, int]) -> Any:
        size = shape[0] * shape[1] * shape[2]
        if self._flat is None or self._flat.shape[0] < size:
            self._flat = self._xp.empty((size,), dtype=self._xp.uint64)
        return self._xp.reshape(self._flat[:size], shape)


def detect_tile(xp: Any, plan: "FaultSimPlan", matrix: Any, full_row: Any,
                batch: "Sequence[Fault]",
                scratch: TileScratch | None = None) -> Any:
    """Detection rows ``(n_faults, n_words)`` for one tile of faults.

    ``matrix``/``full_row`` live in the ``xp`` namespace and may be
    column slices of the full waveform matrix: every operation here is
    word-wise, so a pattern-axis tile computes exactly the
    corresponding columns of the full detection matrix.  The returned
    array is a device array — callers transfer it at the merge
    boundary.  Cone unions and row bookkeeping stay on the host (tiny
    ``intp`` plan metadata); only waveform slabs run on ``xp``.
    """
    index = plan.schedule.line_index
    n_words = matrix.shape[1]
    n_faults = len(batch)
    fault_rows = np.array([index[f.line] for f in batch], dtype=np.intp)
    stuck = np.array([bool(f.stuck_at) for f in batch], dtype=bool)

    cones = [plan.cone_rows(f.line) for f in batch]
    nonempty = [c for c in cones if c.size]
    gate_rows = np.unique(np.concatenate(nonempty)) if nonempty else \
        np.empty(0, dtype=np.intp)

    # Rows the replay touches: union cone gates, their (padded) inputs,
    # the fault lines themselves and the constant-ones padding row.
    parts = [gate_rows, fault_rows,
             np.array([plan.ones_index], dtype=np.intp)]
    and_rows_all = gate_rows[plan.is_and[gate_rows]]
    if and_rows_all.size:
        parts.append(plan.and_inputs[and_rows_all].ravel())
    other_sel = []
    if gate_rows.size > and_rows_all.size:
        for gbatch in plan.other_batches:
            member = np.isin(gbatch.outputs, gate_rows)
            if member.any():
                other_sel.append((gbatch, member))
                parts.append(gbatch.inputs[:, member].ravel())
    needed = np.unique(np.concatenate(parts))

    local_of = np.full(plan.n_rows, -1, dtype=np.intp)
    local_of[needed] = np.arange(needed.size)
    good_local = matrix[to_device(xp, needed)]            # (L, W)
    # Lane-minor layout (L, F, W): a gathered gate row is one
    # contiguous (F, W) slab, so the per-level fancy indexing streams
    # instead of striding n_local_lines * n_words apart per lane.
    shape = (needed.size, n_faults, n_words)
    if scratch is not None:
        faulty = scratch.faulty(shape)
    else:
        faulty = xp.empty(shape, dtype=xp.uint64)
    faulty[...] = good_local[:, None, :]

    lanes = to_device(xp, np.arange(n_faults))
    fault_loc = to_device(xp, local_of[fault_rows])
    stuck_rows = xp.where(to_device(xp, stuck)[:, None],
                          full_row[None, :],
                          xp.zeros((1, n_words), dtype=xp.uint64))
    faulty[fault_loc, lanes] = stuck_rows

    levels = plan.level[gate_rows]
    for lv in np.unique(levels):
        rows_lv = gate_rows[levels == lv]
        and_rows = rows_lv[plan.is_and[rows_lv]]
        if and_rows.size:
            in_loc = local_of[plan.and_inputs[and_rows]]      # (k, A)
            inv_in = plan.and_inv_in[and_rows]                # (k, A)
            # Accumulate pin by pin instead of materializing the full
            # (A, k, F, W) gather: each fancy index already copies, so
            # the xor/and run in place on (k, F, W) slabs — about half
            # the memory traffic of gather + reduce.
            acc = faulty[to_device(xp, in_loc[:, 0])]         # (k, F, W)
            acc ^= to_device(xp, inv_in[:, 0])[:, None, None]
            for pin in range(1, in_loc.shape[1]):
                term = faulty[to_device(xp, in_loc[:, pin])]
                term ^= to_device(xp, inv_in[:, pin])[:, None, None]
                acc &= term
            acc ^= to_device(xp, plan.and_inv_out[and_rows])[:, None, None]
            acc &= full_row
            faulty[to_device(xp, local_of[and_rows])] = acc
        if rows_lv.size > and_rows.size:
            for gbatch, member in other_sel:
                if gbatch.level != lv:
                    continue
                in_loc = local_of[gbatch.inputs[:, member]]   # (A, k)
                k = in_loc.shape[1]
                rows = faulty[to_device(xp, in_loc)]          # (A, k, F, W)
                out = eval_gate_rows(xp, gbatch.gtype, rows, full_row,
                                     (k, n_faults, n_words))
                faulty[to_device(xp, local_of[gbatch.outputs[member]])] = out
        # A gate may drive another fault's stuck line: re-force every
        # lane's own fault row before the next level reads it.
        faulty[fault_loc, lanes] = stuck_rows

    obs_loc = local_of[plan.obs_rows]
    present = obs_loc[obs_loc >= 0]
    if present.size:
        obs_faulty = faulty[to_device(xp, present)]           # (P, F, W)
        obs_good = good_local[to_device(xp, present)]         # (P, W)
        det = obs_faulty[0] ^ obs_good[0]                     # (F, W)
        for i in range(1, present.size):
            det |= obs_faulty[i] ^ obs_good[i]
    else:
        det = xp.zeros((n_faults, n_words), dtype=xp.uint64)
    return det
