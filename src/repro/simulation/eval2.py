"""Plain two-valued combinational simulation.

The reference evaluator: explicit dict in, dict out, no packing.  The
bit-parallel simulators are property-tested against this one.
"""

from __future__ import annotations

from collections.abc import Mapping

from repro.errors import SimulationError
from repro.netlist.circuit import Circuit
from repro.netlist.gates import eval_gate

__all__ = ["simulate_comb", "comb_input_lines"]


def comb_input_lines(circuit: Circuit) -> list[str]:
    """The lines that act as inputs of the combinational part.

    Primary inputs plus DFF outputs (the *pseudo-inputs* of the paper) —
    exactly the lines a test-mode stimulus must assign.
    """
    return list(circuit.inputs) + circuit.dff_outputs


def simulate_comb(circuit: Circuit,
                  inputs: Mapping[str, int]) -> dict[str, int]:
    """Evaluate the combinational part under a full input assignment.

    Parameters
    ----------
    circuit:
        The circuit; DFF gates are *not* evaluated (their outputs must be
        given in ``inputs``).
    inputs:
        Value (0/1) for every primary input and every DFF output.

    Returns
    -------
    dict
        Values for **all** lines (inputs included).
    """
    values: dict[str, int] = {}
    for line in comb_input_lines(circuit):
        try:
            value = inputs[line]
        except KeyError:
            raise SimulationError(
                f"missing input value for line {line!r}") from None
        if value not in (0, 1):
            raise SimulationError(
                f"line {line!r}: value {value!r} is not 0/1")
        values[line] = value
    for line in circuit.topo_order():
        gate = circuit.gates[line]
        values[line] = eval_gate(
            gate.gtype, [values[src] for src in gate.inputs])
    return values
