"""VCD (Value Change Dump, IEEE 1364) export of packed waveforms.

Turns the packed per-line waveforms used throughout the library into a
standard VCD file viewable in GTKWave & co.  The main customer is scan
debugging: dump a whole shift episode and *see* which nets the blocking
vector silenced::

    from repro.power import episode_waveforms
    from repro.simulation.vcd import write_vcd

    waves, n = episode_waveforms(design, vectors, policy)
    write_vcd(waves, n, "episode.vcd", module=design.circuit.name)
"""

from __future__ import annotations

import io
from collections.abc import Mapping
from pathlib import Path

from repro.errors import SimulationError
from repro.simulation.values import bit_at

__all__ = ["render_vcd", "write_vcd"]

# VCD identifier characters (printable ASCII ! through ~).
_ID_FIRST = 33
_ID_LAST = 126
_ID_RANGE = _ID_LAST - _ID_FIRST + 1


def _identifier(index: int) -> str:
    """Compact VCD identifier for the ``index``-th signal."""
    chars = []
    index += 1
    while index > 0:
        index, digit = divmod(index - 1, _ID_RANGE)
        chars.append(chr(_ID_FIRST + digit))
    return "".join(reversed(chars))


def render_vcd(waveforms: Mapping[str, int], n_cycles: int,
               module: str = "repro", timescale: str = "1 ns",
               clock_period: int = 2) -> str:
    """Render packed waveforms as VCD text.

    Parameters
    ----------
    waveforms:
        ``line name -> packed word`` (bit ``t`` = value in cycle ``t``).
    n_cycles:
        Number of valid cycles in every word.
    module:
        Scope name in the VCD hierarchy.
    timescale:
        VCD timescale declaration.
    clock_period:
        Timestamp increment per cycle (so edges don't alias).
    """
    if n_cycles < 1:
        raise SimulationError("need at least one cycle")
    if not waveforms:
        raise SimulationError("no waveforms to dump")

    lines = sorted(waveforms)
    ids = {line: _identifier(i) for i, line in enumerate(lines)}

    out = io.StringIO()
    out.write(f"$timescale {timescale} $end\n")
    out.write(f"$scope module {module} $end\n")
    for line in lines:
        out.write(f"$var wire 1 {ids[line]} {line} $end\n")
    out.write("$upscope $end\n$enddefinitions $end\n")

    out.write("#0\n$dumpvars\n")
    previous: dict[str, int] = {}
    for line in lines:
        value = bit_at(waveforms[line], 0)
        previous[line] = value
        out.write(f"{value}{ids[line]}\n")
    out.write("$end\n")

    for t in range(1, n_cycles):
        changes = []
        for line in lines:
            value = bit_at(waveforms[line], t)
            if value != previous[line]:
                previous[line] = value
                changes.append(f"{value}{ids[line]}")
        if changes:
            out.write(f"#{t * clock_period}\n")
            out.write("\n".join(changes))
            out.write("\n")
    out.write(f"#{n_cycles * clock_period}\n")
    return out.getvalue()


def write_vcd(waveforms: Mapping[str, int], n_cycles: int,
              path: str | Path, module: str = "repro",
              timescale: str = "1 ns") -> Path:
    """Render and write a VCD file; returns the path."""
    path = Path(path)
    path.write_text(render_vcd(waveforms, n_cycles, module, timescale),
                    encoding="utf-8")
    return path
