"""Vectorized NumPy backend: packed ``uint64`` waveform matrix.

Every line's waveform is one row of a ``(n_lines, n_words)`` ``uint64``
matrix — bit ``t`` of the row (little-endian across words) is the value
in pattern ``t``, the same packing as the big-int interchange words.  The
levelized schedule (:mod:`repro.simulation.schedule`) batches all gates
of one (level, type, arity) bucket into a single fancy-indexed array
operation, replacing the per-gate Python dispatch of the reference
engine.

Derived quantities are computed on the matrix without ever unpacking to
big ints:

* transitions — whole-matrix shift/xor + ``np.bitwise_count``;
* leakage sums — per (type, arity) group, one masked-AND popcount per
  leakage-table pattern, accumulated in the table's iteration order so
  the per-gate floats match the reference backend bit-for-bit.

The schedule evaluation itself lives in the namespace-parameterized
kernels (:mod:`repro.simulation.kernels`) shared with the ``array_api``
backend; this engine calls them with ``xp = numpy``, so there is one
kernel implementation, not two.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence
from typing import TYPE_CHECKING

import numpy as np

from repro.cells.library import CellLibrary
from repro.netlist.circuit import Circuit
from repro.netlist.gates import GateType
from repro.obs.trace import span
from repro.simulation.backends.base import Backend, SimState
from repro.simulation.kernels import (
    eval_gate_rows,
    eval_schedule,
    initial_state,
    int_to_row,
    row_to_int,
)
from repro.simulation.schedule import LevelizedSchedule, cached_schedule
from repro.simulation.values import mask

if TYPE_CHECKING:  # pragma: no cover - import cycle broken at runtime
    from repro.atpg.faults import Fault
    from repro.atpg.faultsim import FaultSimResult
    from repro.simulation.fault_episode import FaultEpisodePlan

__all__ = ["NumpyBackend", "NumpyState"]

_U64 = np.dtype("<u8")
_ONE = np.uint64(1)
_SHIFT63 = np.uint64(63)

#: Per-byte popcount table for the NumPy < 2.0 fallback path.
_BYTE_POPCOUNT = np.array([bin(i).count("1") for i in range(256)],
                          dtype=np.uint8)


def _popcount_sum_fallback(arr: np.ndarray,
                           buf: np.ndarray | None = None) -> np.ndarray:
    """Bit count summed over the last axis, via a byte lookup table.

    Works on any NumPy; bit counts are byte-order independent, so the
    ``uint8`` reinterpretation is safe on either endianness.
    """
    as_bytes = np.ascontiguousarray(arr).view(np.uint8)
    return _BYTE_POPCOUNT[as_bytes].sum(axis=-1, dtype=np.int64)


if hasattr(np, "bitwise_count"):
    def _popcount_sum(arr: np.ndarray,
                      buf: np.ndarray | None = None) -> np.ndarray:
        """Bit count summed over the last axis (``np.bitwise_count``,
        NumPy >= 2.0); ``buf`` is an optional uint8 scratch of
        ``arr.shape``."""
        return np.bitwise_count(arr, out=buf).sum(axis=-1)
else:  # pragma: no cover - exercised only on NumPy 1.x installs
    _popcount_sum = _popcount_sum_fallback


# Legacy private aliases — the implementations moved to the shared
# namespace-parameterized kernels; numpy is just one namespace now.
_int_to_row = int_to_row
_row_to_int = row_to_int


def _eval_rows(gtype: GateType, rows: np.ndarray, full: np.ndarray,
               out_shape: tuple[int, ...]) -> np.ndarray:
    """Shared gate kernel specialized to the numpy namespace."""
    return eval_gate_rows(np, gtype, rows, full, out_shape)


class NumpyState(SimState):
    """Waveforms as rows of a packed ``uint64`` matrix."""

    def __init__(self, circuit: Circuit, n: int,
                 schedule: LevelizedSchedule, matrix: np.ndarray,
                 full_row: np.ndarray):
        super().__init__(circuit, n)
        self._schedule = schedule
        self._matrix = matrix
        self._full_row = full_row

    @property
    def matrix(self) -> np.ndarray:
        """The raw ``(n_lines, n_words)`` waveform matrix (read-only use)."""
        return self._matrix

    def lines(self) -> Sequence[str]:
        return self._schedule.lines

    def word(self, line: str) -> int:
        return _row_to_int(self._matrix[self._schedule.line_index[line]])

    def words(self) -> dict[str, int]:
        matrix = self._matrix
        return {line: int.from_bytes(matrix[i].tobytes(), "little")
                for i, line in enumerate(self._schedule.lines)}

    def transitions(self) -> dict[str, int]:
        state = self._matrix[:len(self._schedule.lines)]
        n = self.n
        if n < 2 or state.shape[1] == 0:
            return dict.fromkeys(self._schedule.lines, 0)
        diff = np.empty_like(state)
        diff[:, :-1] = (state[:, :-1] >> _ONE) | (state[:, 1:] << _SHIFT63)
        diff[:, -1] = state[:, -1] >> _ONE
        diff ^= state
        # Only the tail word can hold bits at or above position n-1.
        diff[:, -1] &= np.uint64((mask(n - 1) >> (64 * (state.shape[1] - 1)))
                                 & 0xFFFFFFFFFFFFFFFF)
        counts = _popcount_sum(diff)
        return dict(zip(self._schedule.lines, counts.tolist()))

    def _pattern_counts(self, rows: np.ndarray) -> np.ndarray:
        """Exact per-gate cycle counts for every input pattern.

        ``rows`` is ``(arity, n_gates, n_words)``; the result is
        ``(2**arity, n_gates)`` int64, entry ``[p, g]`` the number of
        patterns on which gate ``g``'s inputs equal bit-pattern ``p``
        (pin ``j`` = bit ``j`` of ``p``).

        Computed as subset popcounts (AND-products shared along a prefix
        tree) followed by Möbius inversion over the subset lattice —
        integer-exact, so downstream float pricing matches the reference
        backend's per-pattern popcounts bit-for-bit.
        """
        arity, n_gates, n_words = rows.shape
        subsets = 1 << arity
        ones = np.empty((subsets, n_gates), dtype=np.int64)
        ones[0] = self.n
        prods: list[np.ndarray | None] = [None] * subsets
        pop = np.empty((n_gates, n_words), dtype=np.uint8)
        for m in range(1, subsets):
            low = m & -m
            if m == low:
                prods[m] = rows[low.bit_length() - 1]
            else:
                prods[m] = prods[m ^ low] & prods[low]
            ones[m] = _popcount_sum(prods[m], pop)
        # In-place superset Möbius inversion: afterwards ones[p] is the
        # count of cycles whose pattern is exactly p.
        lattice = ones.reshape((2,) * arity + (n_gates,))
        for axis in range(arity):
            zero = tuple(0 if i == axis else slice(None)
                         for i in range(arity))
            one = tuple(1 if i == axis else slice(None)
                        for i in range(arity))
            lattice[zero] -= lattice[one]
        return ones

    def leakage_sum(self, library: CellLibrary) -> dict[str, float]:
        schedule = self._schedule
        state = self._matrix
        n_inputs = len(schedule.input_lines)
        # Fixed topological insertion order: downstream float reductions
        # (e.g. mean leakage) must sum in the same order as the reference
        # backend to stay bit-identical.
        leakage = {line: 0.0 for line in schedule.lines[n_inputs:]}
        for group in schedule.type_groups:
            table = library.leakage_table(group.gtype, group.arity)
            totals = np.zeros(len(group), dtype=np.float64)
            if group.arity == 0:
                # Zero-input tie cells leak their single table entry on
                # every pattern.
                for _pattern, leak_na in table.items():
                    totals += float(self.n) * leak_na
            else:
                counts = self._pattern_counts(state[group.inputs])
                for pattern, leak_na in table.items():
                    code = 0
                    for pin, bit in enumerate(pattern):
                        code |= bit << pin
                    totals += counts[code].astype(np.float64) * leak_na
            for out_pos, value in zip(group.outputs, totals):
                leakage[schedule.lines[out_pos]] = float(value)
        return leakage

    def pattern_counts(self) -> dict[str, np.ndarray]:
        """Möbius-inverted subset popcounts per (type, arity) group.

        Same integers as the generic per-pattern popcount reference
        (:meth:`SimState.pattern_counts`), one vectorized pass per
        group instead of one Python loop per gate.
        """
        schedule = self._schedule
        n_inputs = len(schedule.input_lines)
        # Seed the dict in topological order; groups fill it out of
        # order but cover every combinational gate exactly once.
        counts: dict[str, np.ndarray] = \
            dict.fromkeys(schedule.lines[n_inputs:])  # type: ignore[arg-type]
        for group in schedule.type_groups:
            ones = self._pattern_counts(self._matrix[group.inputs])
            for g, out_pos in enumerate(group.outputs):
                counts[schedule.lines[out_pos]] = \
                    np.ascontiguousarray(ones[:, g])
        return counts

    def _unpack_bools(self, line: str) -> np.ndarray:
        row = self._matrix[self._schedule.line_index[line]]
        bits = np.unpackbits(np.frombuffer(row.tobytes(), dtype=np.uint8),
                             bitorder="little")
        return bits[:self.n].astype(bool)


class NumpyBackend(Backend):
    """Levelized, type-batched ``uint64`` matrix engine."""

    name = "numpy"

    def run(self, circuit: Circuit, input_words: Mapping[str, int],
            n: int) -> NumpyState:
        schedule = cached_schedule(circuit)
        n_words = (n + 63) // 64
        full = mask(n)
        full_row = int_to_row(full, n_words)
        state = initial_state(schedule, input_words, n, n_words, full,
                              full_row)
        eval_schedule(np, schedule, state, full_row)
        return NumpyState(circuit, n, schedule, state, full_row)

    def eval_gate_packed(self, gtype: GateType, words: Sequence[int],
                         n: int) -> int:
        n_words = (n + 63) // 64
        full_row = int_to_row(mask(n), n_words)
        if words:
            rows = np.stack([int_to_row(w, n_words) for w in words])
        else:
            rows = np.zeros((0, n_words), dtype=_U64)
        return row_to_int(
            eval_gate_rows(np, gtype, rows, full_row, (n_words,)))

    def fault_simulate_batch(self, circuit: Circuit,
                             faults: Sequence[Fault],
                             input_words: Mapping[str, int], n: int,
                             drop: bool = True,
                             cone_cache: dict[str, list[str]] | None = None
                             ) -> FaultSimResult:
        """Fused batched cone replay on the ``uint64`` matrix.

        See :mod:`repro.simulation.backends.fault_kernel`; bit-identical
        to the scalar reference.  ``cone_cache`` (a string-keyed cache of
        the scalar path) is ignored — the kernel keeps its own
        per-circuit plan.
        """
        from repro.simulation.backends.fault_kernel import (
            fault_simulate_matrix,
        )
        state = self.run(circuit, input_words, n)
        return fault_simulate_matrix(state, faults, drop=drop)

    def fault_simulate_plan(self, plan: "FaultEpisodePlan",
                            drop: bool = True,
                            stream_budget: int | None = None
                            ) -> "FaultSimResult":
        """Whole-plan replay on the 2-D-tiled fused kernel.

        The plan's memoized good-machine state (and with it the
        levelized schedule) is settled once and reused across every
        fault-axis chunk and pattern-axis word block; see
        :func:`repro.simulation.backends.fault_kernel.
        fault_simulate_matrix`.  Bit-identical to the scalar reference
        for every tile geometry.  A resolved ``stream_budget`` the plan
        exceeds switches to streamed pattern windows (the memoized state
        is bypassed — it is exactly the matrix streaming avoids).
        """
        from repro.simulation.backends.fault_kernel import (
            fault_simulate_matrix,
        )
        from repro.simulation.streaming import (
            resolve_stream_budget,
            stream_fault_plan,
        )
        budget = resolve_stream_budget(stream_budget)
        if budget is not None and plan.state_elements() > budget:
            return stream_fault_plan(self, plan, budget)
        state = plan.good_state(self)
        assert isinstance(state, NumpyState)
        with span("sim.fault_plan", backend=self.name,
                  faults=plan.n_faults, patterns=plan.n):
            return fault_simulate_matrix(state, plan.faults, drop=drop)

    def fault_window_result(self, circuit: Circuit,
                            faults: Sequence[Fault],
                            input_words: Mapping[str, int], n: int,
                            element_budget: int | None = None
                            ) -> "FaultSimResult":
        """One streamed pattern window on the tiled kernel.

        The good machine is settled over the window's cycles only and
        the fault tiles are evaluated from that window view, with the
        kernel's element budget capped at the stream budget so a faulty
        tile never outgrows the window it streams from.
        """
        from repro.simulation.backends.fault_kernel import (
            _BATCH_ELEMENT_BUDGET,
            fault_simulate_matrix,
        )
        state = self.run(circuit, input_words, n)
        budget = _BATCH_ELEMENT_BUDGET if element_budget is None else \
            min(element_budget, _BATCH_ELEMENT_BUDGET)
        return fault_simulate_matrix(state, faults, drop=False,
                                     element_budget=budget)
