"""Fused, batched stuck-at fault simulation on the ``uint64`` matrix.

The scalar reference (:mod:`repro.atpg.faultsim`) replays one fanout cone
per fault with big-int gate evaluations — one Python-level dispatch per
(fault, cone gate).  This kernel replays a whole *batch* of faults at
once on the numpy backend's packed waveform matrix:

1. faults are ordered by the topological position of their fault line, so
   neighbouring faults share most of their fanout cones, then chunked
   into batches sized to a fixed element budget;
2. per batch, the union of the member cones is gathered into a compact
   local matrix ``(n_faults, n_local_lines, n_words)`` initialised with
   the fault-free rows; each fault lane forces its own line to the stuck
   row;
3. the union's gates are evaluated level by level using the circuit's
   levelized schedule: the whole AND-family of a level (NAND/NOR/INV/...,
   De Morgan literals, padded with the constant-ones row) collapses into
   one gather + AND-reduce over the ``(fault, gate, word)`` axes, and the
   remaining gate types batch per (type, arity) — so the Python-level op
   count scales with circuit *depth* times the number of batches, not
   with faults x cone size;
4. fault lanes are re-forced after every level (a gate may drive another
   fault's stuck line), and detection is one XOR + OR-reduce of the
   observable rows against the good rows.

Gates outside a fault's own cone recompute their fault-free values in
that lane (their inputs are untouched there), so the union replay is
exact: detection words are bit-identical to the scalar reference.

Fault dropping happens per batch exactly as in the reference: every
pattern of the call is simulated at once, so the detection word always
records all detecting patterns and ``drop`` cannot change the result.

The per-tile replay itself lives in the namespace-parameterized kernels
(:func:`repro.simulation.kernels.detect_tile`): this module owns the
host-side plan (index arrays, cone cache, tile geometry, fault
ordering) and drives the shared kernel with ``xp = numpy`` by default
or with whatever namespace the ``array_api`` backend passes in.
"""

from __future__ import annotations

import weakref
from collections.abc import Sequence
from typing import TYPE_CHECKING

import numpy as np

from repro.atpg.faults import observable_lines
from repro.netlist.circuit import Circuit
from repro.simulation.kernels import TileScratch, detect_tile, to_host
from repro.simulation.schedule import (
    AND_FAMILY,
    GateBatch,
    cached_schedule,
)

if TYPE_CHECKING:  # pragma: no cover - runtime import would be cyclic
    from repro.atpg.faults import Fault
    from repro.atpg.faultsim import FaultSimResult
    from repro.simulation.backends.numpy_backend import NumpyState

__all__ = ["FaultSimPlan", "cached_fault_plan", "fault_simulate_matrix",
           "tile_geometry"]

_U64 = np.dtype("<u8")
_ALL_ONES = np.uint64(0xFFFFFFFFFFFFFFFF)

#: Element budget of one batch's local faulty matrix (uint64 entries);
#: bounds peak memory at ~32 MiB and is the only batching knob, so the
#: fault grouping — and therefore the arithmetic — is deterministic.
_BATCH_ELEMENT_BUDGET = 1 << 22

_MIN_BATCH_FAULTS = 4
_MAX_BATCH_FAULTS = 128


class FaultSimPlan:
    """Per-circuit index arrays for the batched fault kernel.

    Built once per :attr:`Circuit.version` (see
    :func:`cached_fault_plan`) on top of the levelized schedule: padded
    AND-family literals per gate row, the non-AND-family batches, gate
    levels, observable rows and a fanout-cone row cache.
    """

    def __init__(self, circuit: Circuit):
        schedule = cached_schedule(circuit)
        self.schedule = schedule
        # Weak ref only: plans are values of a WeakKeyDictionary keyed on
        # the circuit — a strong ref here would keep the key alive and
        # turn the cache into a leak.
        self._circuit_ref = weakref.ref(circuit)
        self.version = circuit.version
        n_rows = schedule.n_lines + 1  # + the constant-ones padding row
        self.n_rows = n_rows
        self.ones_index = schedule.ones_index

        and_batches = [b for b in schedule.batches if b.gtype in AND_FAMILY]
        self.other_batches: tuple[GateBatch, ...] = tuple(
            b for b in schedule.batches if b.gtype not in AND_FAMILY)
        max_arity = max((b.arity for b in and_batches), default=0)

        self.level = np.zeros(n_rows, dtype=np.intp)
        self.is_and = np.zeros(n_rows, dtype=bool)
        self.and_inputs = np.full((n_rows, max_arity), self.ones_index,
                                  dtype=np.intp)
        self.and_inv_in = np.zeros((n_rows, max_arity), dtype=_U64)
        self.and_inv_out = np.zeros(n_rows, dtype=_U64)
        for batch in schedule.batches:
            self.level[batch.outputs] = batch.level
        for batch in and_batches:
            self.is_and[batch.outputs] = True
            self.and_inputs[batch.outputs, :batch.arity] = batch.inputs.T
            in_inverted, out_inverted = AND_FAMILY[batch.gtype]
            if in_inverted:
                self.and_inv_in[batch.outputs, :batch.arity] = _ALL_ONES
            if out_inverted:
                self.and_inv_out[batch.outputs] = _ALL_ONES

        self.obs_rows = np.array(
            [schedule.line_index[line] for line in observable_lines(circuit)],
            dtype=np.intp)
        self._cone_rows: dict[str, np.ndarray] = {}
        self._tile_cache: dict[tuple[int, int | None], tuple[int, int]] = {}

    def cone_rows(self, line: str) -> np.ndarray:
        """Gate-output rows in ``line``'s fanout cone, ascending (= topo).

        The fault line itself is excluded; row order follows
        ``schedule.lines`` (inputs first, then topological gate order),
        so ascending row index is a valid evaluation order.
        """
        rows = self._cone_rows.get(line)
        if rows is None:
            circuit = self._circuit_ref()
            assert circuit is not None, "circuit outlived by its plan"
            index = self.schedule.line_index
            gates = circuit.gates
            cone = circuit.fanout_cone(line)
            rows = np.array(
                sorted(index[out] for out in cone
                       if out != line and out in gates),
                dtype=np.intp)
            self._cone_rows[line] = rows
        return rows


_PLAN_CACHE: "weakref.WeakKeyDictionary[Circuit, FaultSimPlan]" = \
    weakref.WeakKeyDictionary()


def cached_fault_plan(circuit: Circuit) -> FaultSimPlan:
    """Memoized :class:`FaultSimPlan`, invalidated by circuit mutation."""
    plan = _PLAN_CACHE.get(circuit)
    if plan is None or plan.version != circuit.version:
        plan = FaultSimPlan(circuit)
        _PLAN_CACHE[circuit] = plan
    return plan


def tile_geometry(plan: FaultSimPlan, n_words: int,
                  element_budget: int | None = None) -> tuple[int, int]:
    """2-D tile shape ``(faults per tile, words per tile)``.

    Deterministic for a given (circuit, pattern count, budget): the
    fault axis is chunked first (as the 1-D kernel always did); when
    the pattern set is so wide that even the minimum fault chunk blows
    the element budget, the **pattern axis** is tiled into word blocks
    instead of letting the faulty matrix overshoot.  Tile boundaries
    are invisible in the results — every (fault, pattern) cell is
    computed independently — so the geometry is purely a memory/speed
    knob.

    Memoized on the plan per ``(n_words, budget)``: repeated dispatches
    of the same plan (campaign sweeps re-evaluating one circuit over
    many vectors) skip re-deriving the tiling.
    """
    key = (n_words, element_budget)
    cached = plan._tile_cache.get(key)
    if cached is not None:
        return cached
    budget = _BATCH_ELEMENT_BUDGET if element_budget is None \
        else element_budget
    n_words = max(1, n_words)
    per_fault = max(1, plan.n_rows * n_words)
    size = budget // per_fault
    if size >= _MIN_BATCH_FAULTS:
        geometry = (min(_MAX_BATCH_FAULTS, size), n_words)
    else:
        words = budget // max(1, plan.n_rows * _MIN_BATCH_FAULTS)
        geometry = (_MIN_BATCH_FAULTS, max(1, min(n_words, words)))
    plan._tile_cache[key] = geometry
    return geometry


def fault_simulate_matrix(state: "NumpyState",
                          faults: "Sequence[Fault]",
                          drop: bool = True,
                          element_budget: int | None = None,
                          xp: object | None = None,
                          matrix: object | None = None
                          ) -> "FaultSimResult":
    """Batched fault simulation over a settled packed state, 2-D tiled.

    ``state`` is the fault-free simulation of the target patterns
    (:meth:`NumpyBackend.run`); the result is bit-identical to
    :func:`repro.atpg.faultsim.scalar_fault_simulate` on the same
    stimulus, including ``remaining`` ordering, for **every** tile
    geometry (:func:`tile_geometry`): the fault axis is chunked under
    the element budget and, for pattern sets too wide for even the
    minimum fault chunk, the pattern axis is additionally tiled into
    word blocks — each block replays the same union-of-cones kernel on
    a column slice of the waveform matrix, reusing the settled good
    state, the levelized schedule and one scratch ``faulty`` buffer
    across all tiles.

    ``element_budget`` overrides the batch budget (tests force tiny
    budgets to pin multi-tile geometries; production uses the default).
    ``xp``/``matrix`` retarget the tile replay at another array
    namespace and its device-resident waveform matrix (the ``array_api``
    backend passes both); the default is numpy on ``state.matrix``.
    Detection words transfer to the host once per tile — the merge
    boundary.
    """
    from repro.atpg.faultsim import FaultSimResult

    if xp is None:
        xp = np
    plan = cached_fault_plan(state.circuit)
    if matrix is None:
        matrix = state.matrix
    n_words = matrix.shape[1]
    full_row = matrix[plan.ones_index]

    index = plan.schedule.line_index
    unique = list(dict.fromkeys(faults))
    # Topological grouping: neighbouring fault lines share their cones.
    unique.sort(key=lambda f: (index[f.line], f.stuck_at))
    f_tile, w_tile = tile_geometry(plan, n_words, element_budget)
    scratch = TileScratch(xp)

    words: dict[Fault, int] = {}
    for start in range(0, len(unique), f_tile):
        batch = unique[start:start + f_tile]
        if w_tile >= n_words:
            det = to_host(detect_tile(xp, plan, matrix, full_row, batch,
                                      scratch))
        else:
            det = np.empty((len(batch), n_words), dtype=_U64)
            for w0 in range(0, n_words, w_tile):
                w1 = min(n_words, w0 + w_tile)
                det[:, w0:w1] = to_host(detect_tile(
                    xp, plan, matrix[:, w0:w1], full_row[w0:w1], batch,
                    scratch))
        det = np.ascontiguousarray(det)
        for i, fault in enumerate(batch):
            words[fault] = int.from_bytes(det[i].tobytes(), "little")

    detected: dict[Fault, int] = {}
    remaining: list[Fault] = []
    for fault in faults:
        word = words[fault]
        if word:
            detected[fault] = word
        else:
            remaining.append(fault)
    return FaultSimResult(detected=detected, remaining=remaining)
