"""Pluggable packed-simulation backends.

Two engines ship with the library:

* ``bigint`` — the reference engine (Python big-int bitwise ops);
* ``numpy`` — levelized, type-batched ``uint64`` matrix engine.

All backends produce bit-identical packed words and IEEE-identical
derived floats; the choice only affects speed.  Selection, in precedence
order:

1. an explicit ``backend=`` argument (name or instance) on the public
   entry points (``simulate_packed``, ``simulate_cycles``,
   ``fault_simulate``, ``evaluate_scan_power``, the observability
   estimators, ...);
2. a session default installed via :func:`set_default_backend` (the CLI's
   ``--backend`` flag does this);
3. the ``REPRO_SIM_BACKEND`` environment variable;
4. the built-in default, ``bigint``.

Third-party engines register with :func:`register_backend` and become
addressable by name everywhere.
"""

from __future__ import annotations

import os

from repro.errors import SimulationError
from repro.simulation.backends.base import Backend, SimState
from repro.simulation.backends.bigint import BigIntBackend, BigIntState
from repro.simulation.backends.numpy_backend import NumpyBackend, NumpyState

__all__ = [
    "Backend",
    "SimState",
    "BigIntBackend",
    "BigIntState",
    "NumpyBackend",
    "NumpyState",
    "register_backend",
    "available_backends",
    "get_backend",
    "resolve_backend",
    "set_default_backend",
    "default_backend_name",
    "DEFAULT_BACKEND_ENV",
]

#: Environment variable consulted for the session default backend.
DEFAULT_BACKEND_ENV = "REPRO_SIM_BACKEND"

_REGISTRY: dict[str, Backend] = {}
_default_override: str | None = None


def register_backend(backend: Backend, overwrite: bool = False) -> Backend:
    """Register ``backend`` under its :attr:`~Backend.name`.

    Raises :class:`SimulationError` on a duplicate name unless
    ``overwrite`` is set.
    """
    if not backend.name:
        raise SimulationError("backend has no name")
    if backend.name in _REGISTRY and not overwrite:
        raise SimulationError(
            f"backend {backend.name!r} is already registered")
    _REGISTRY[backend.name] = backend
    return backend


def available_backends() -> tuple[str, ...]:
    """Names of all registered backends, sorted."""
    return tuple(sorted(_REGISTRY))


def get_backend(name: str) -> Backend:
    """Look a backend up by name; raises :class:`SimulationError` if unknown."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise SimulationError(
            f"unknown simulation backend {name!r}; "
            f"available: {', '.join(available_backends())}") from None


def set_default_backend(name: str | None) -> None:
    """Install the session-default backend (``None`` resets to the env/
    built-in default).  The name is validated immediately."""
    global _default_override
    if name is not None:
        get_backend(name)
    _default_override = name


def default_backend_name() -> str:
    """The session default: override, else environment, else ``bigint``."""
    if _default_override is not None:
        return _default_override
    return os.environ.get(DEFAULT_BACKEND_ENV, "") or "bigint"


def resolve_backend(backend: str | Backend | None) -> Backend:
    """Turn a backend spec (name, instance or ``None``) into an instance."""
    if backend is None:
        return get_backend(default_backend_name())
    if isinstance(backend, Backend):
        return backend
    return get_backend(backend)


register_backend(BigIntBackend())
register_backend(NumpyBackend())
