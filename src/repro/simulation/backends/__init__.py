"""Pluggable packed-simulation backends.

Four engines ship with the library:

* ``bigint`` — the reference engine (Python big-int bitwise ops);
* ``numpy`` — levelized, type-batched ``uint64`` matrix engine, with a
  fused batched fault-simulation kernel
  (:mod:`repro.simulation.backends.fault_kernel`);
* ``array_api`` — the same kernels (shared via
  :mod:`repro.simulation.kernels`) on a configurable array namespace
  (``numpy`` default, ``cupy``/other via ``--array-namespace`` /
  :attr:`repro.runtime.RuntimeOptions.array_namespace` /
  ``$REPRO_ARRAY_NAMESPACE``) — the GPU/accelerator path;
* ``sharded`` — meta-backend partitioning fault lists over
  ``multiprocessing`` workers (``numpy`` inside each worker); plain
  packed simulation delegates to the inner engine.

All backends produce bit-identical packed words, fault-detection words
and IEEE-identical derived floats; the choice only affects speed.
Selection, in precedence order:

1. an explicit ``backend=`` argument (name or instance) on the public
   entry points (``simulate_packed``, ``simulate_cycles``,
   ``fault_simulate``, ``evaluate_scan_power``, the observability
   estimators, ...);
2. a session default installed via :func:`set_default_backend` (the CLI's
   ``--backend`` flag does this);
3. the ``REPRO_SIM_BACKEND`` environment variable;
4. the built-in default, ``bigint``.

Fault simulation resolves one extra level: an explicit fault-engine spec
(``fault_simulate(backend=...)``, ``FlowConfig.fault_backend``/
``.shards``, the CLI's ``--fault-backend``/``--shards``) wins; otherwise
``REPRO_FAULT_BACKEND`` overrides the *whole* chain above — it is a
targeted knob so e.g. CI can force sharded fault simulation across a run
regardless of how the plain backend was chosen; otherwise the session
chain (2-4) applies.

Third-party engines register with :func:`register_backend` and become
addressable by name everywhere.
"""

from __future__ import annotations

import os

from repro.errors import SimulationError
from repro.simulation.backends.array_api import ArrayApiBackend, ArrayApiState
from repro.simulation.backends.base import Backend, SimState
from repro.simulation.backends.bigint import BigIntBackend, BigIntState
from repro.simulation.backends.numpy_backend import NumpyBackend, NumpyState
from repro.simulation.backends.sharded import ShardedBackend

__all__ = [
    "Backend",
    "SimState",
    "ArrayApiBackend",
    "ArrayApiState",
    "BigIntBackend",
    "BigIntState",
    "NumpyBackend",
    "NumpyState",
    "ShardedBackend",
    "register_backend",
    "available_backends",
    "get_backend",
    "resolve_backend",
    "resolve_fault_backend",
    "set_default_backend",
    "default_backend_name",
    "default_fault_backend_name",
    "DEFAULT_BACKEND_ENV",
    "DEFAULT_FAULT_BACKEND_ENV",
]

#: Environment variable consulted for the session default backend.
DEFAULT_BACKEND_ENV = "REPRO_SIM_BACKEND"

#: Environment variable overriding the default backend for *fault
#: simulation* only (falls back to the session default when unset).
DEFAULT_FAULT_BACKEND_ENV = "REPRO_FAULT_BACKEND"

_REGISTRY: dict[str, Backend] = {}


def register_backend(backend: Backend, overwrite: bool = False) -> Backend:
    """Register ``backend`` under its :attr:`~Backend.name`.

    Raises :class:`SimulationError` on a duplicate name unless
    ``overwrite`` is set.
    """
    if not backend.name:
        raise SimulationError("backend has no name")
    if backend.name in _REGISTRY and not overwrite:
        raise SimulationError(
            f"backend {backend.name!r} is already registered")
    _REGISTRY[backend.name] = backend
    return backend


def available_backends() -> tuple[str, ...]:
    """Names of all registered backends, sorted."""
    return tuple(sorted(_REGISTRY))


def get_backend(name: str) -> Backend:
    """Look a backend up by name; raises :class:`SimulationError` when
    unknown."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise SimulationError(
            f"unknown simulation backend {name!r}; "
            f"available: {', '.join(available_backends())}") from None


def set_default_backend(name: str | None) -> None:
    """Install the session-default backend (``None`` resets to the env/
    built-in default).  The name is validated immediately.

    Equivalent to ``repro.runtime.set_session_defaults(backend=name)``
    — the session level lives in the unified
    :class:`repro.runtime.RuntimeOptions` store.
    """
    if name is not None:
        get_backend(name)
    from repro.runtime import set_session_defaults
    set_session_defaults(backend=name)


def default_backend_name() -> str:
    """The session default: override, else environment, else ``bigint``."""
    from repro.runtime import session_defaults
    override = session_defaults().backend
    if override is not None:
        return override
    return os.environ.get(DEFAULT_BACKEND_ENV, "") or "bigint"


def resolve_backend(backend: str | Backend | None) -> Backend:
    """Turn a backend spec (name, instance or ``None``) into an instance."""
    if backend is None:
        return get_backend(default_backend_name())
    if isinstance(backend, Backend):
        return backend
    return get_backend(backend)


def default_fault_backend_name() -> str:
    """Default engine for fault simulation.

    The session-level *fault* backend
    (:attr:`repro.runtime.RuntimeOptions.fault_backend`) when
    installed, else ``$REPRO_FAULT_BACKEND`` (a targeted override that
    deliberately outranks the session *simulation* backend — see the
    module docstring), else the plain session default chain.  Results
    are bit-identical either way; only speed changes.
    """
    from repro.runtime import session_defaults
    override = session_defaults().fault_backend
    if override is not None:
        return override
    return os.environ.get(DEFAULT_FAULT_BACKEND_ENV, "") or \
        default_backend_name()


def resolve_fault_backend(backend: str | Backend | None) -> Backend:
    """Like :func:`resolve_backend`, but ``None`` resolves through
    :func:`default_fault_backend_name`."""
    if backend is None:
        return get_backend(default_fault_backend_name())
    return resolve_backend(backend)


register_backend(BigIntBackend())
register_backend(NumpyBackend())
register_backend(ArrayApiBackend())
register_backend(ShardedBackend())
