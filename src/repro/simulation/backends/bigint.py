"""Reference backend: Python big-int bitwise simulation.

Wraps the original engine from :mod:`repro.simulation.bitsim` behind the
:class:`~repro.simulation.backends.base.Backend` protocol.  This backend
defines the semantics every other backend must reproduce bit-for-bit.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence

import numpy as np

from repro.cells.library import CellLibrary
from repro.netlist.circuit import Circuit
from repro.netlist.gates import GateType
from repro.simulation.backends.base import Backend, SimState
from repro.simulation.bitsim import _simulate_packed_bigint, eval_gate_packed
from repro.simulation.values import (
    count_transitions,
    mask,
    pattern_count,
    unpack_bool_array,
)

__all__ = ["BigIntBackend", "BigIntState"]


class BigIntState(SimState):
    """Waveforms as a dict of packed big-int words."""

    def __init__(self, circuit: Circuit, n: int, words: dict[str, int]):
        super().__init__(circuit, n)
        self._words = words

    def lines(self) -> Sequence[str]:
        return list(self._words)

    def word(self, line: str) -> int:
        return self._words[line]

    def words(self) -> dict[str, int]:
        return dict(self._words)

    def transitions(self) -> dict[str, int]:
        n = self.n
        return {line: count_transitions(word, n)
                for line, word in self._words.items()}

    def leakage_sum(self, library: CellLibrary) -> dict[str, float]:
        words, n = self._words, self.n
        leakage: dict[str, float] = {}
        for line in self.circuit.topo_order():
            gate = self.circuit.gates[line]
            table = library.leakage_table(gate.gtype, len(gate.inputs))
            in_words = [words[src] for src in gate.inputs]
            total = 0.0
            for pattern, leak_na in table.items():
                cycles = pattern_count(in_words, pattern, n)
                if cycles:
                    total += cycles * leak_na
            leakage[line] = total
        return leakage

    def _unpack_bools(self, line: str) -> np.ndarray:
        return unpack_bool_array(self._words[line], self.n)


class BigIntBackend(Backend):
    """The big-int reference engine."""

    name = "bigint"

    def run(self, circuit: Circuit, input_words: Mapping[str, int],
            n: int) -> BigIntState:
        words = _simulate_packed_bigint(circuit, input_words, n)
        return BigIntState(circuit, n, words)

    def eval_gate_packed(self, gtype: GateType, words: Sequence[int],
                         n: int) -> int:
        return eval_gate_packed(gtype, words, mask(n))
