"""Process-sharded simulation meta-backend (fault and pattern axes).

``ShardedBackend`` wraps an inner engine (``numpy`` by default).  Plain
packed simulation delegates straight to the inner backend; fault
simulation partitions the fault list into contiguous shards, simulates
each shard in its own ``multiprocessing`` worker with the inner engine,
and merges the per-shard :class:`~repro.atpg.faultsim.FaultSimResult`
objects in shard order.  Batched *episode* simulation
(:meth:`ShardedBackend.simulate_episode_batch`) shards the other axis:
oversized :class:`~repro.simulation.episode.EpisodePlan`\\ s are split
into contiguous **cycle ranges** under a fixed memory budget, each chunk
is simulated by a worker, and the chunk results are merged with
integer-exact arithmetic (transition counts add, boundary transitions
are recovered from the chunk-edge bits, leakage pattern counts add and
are priced once) — so the merge is bit-identical to the unsharded pass
for every chunk count.

Determinism guarantees:

* shards are contiguous slices of the input fault list, so the merged
  ``detected`` insertion order and ``remaining`` ordering equal the
  single-process result exactly;
* every shard runs the same bit-identical kernel on the same patterns,
  so detection words never depend on the shard count (the differential
  property tests pin this against the big-int reference);
* fault dropping happens per shard — each worker drops its own detected
  faults — which is exactly the reference semantics, because dropping
  never crosses fault boundaries within one call;
* episode chunks merge through integer pattern/transition counts and a
  single float pricing pass in table order, so leakage floats and
  concatenated waveforms never depend on the chunk count either.

Short fault lists (below ``min_faults_per_shard`` per worker) run inline
on the inner backend: forking costs more than it saves there, and the
result is identical by construction.

Dispatch goes to, in precedence order:

1. an externally owned persistent :class:`~repro.campaign.pool.
   WorkerPool` (``pool=`` at construction, or temporarily via
   :meth:`ShardedBackend.using_pool`) — live workers, no per-call fork;
   workers intern circuits by content fingerprint so their per-circuit
   plan caches keep hitting across calls;
2. the process-wide shared pool, when someone started one
   (:func:`repro.campaign.pool.ensure_shared_pool`);
3. a fresh per-call ``multiprocessing`` pool (fork where it is the
   platform default, spawn elsewhere) — the original behaviour.
"""

from __future__ import annotations

import contextlib
import multiprocessing
import os
from collections import OrderedDict
from collections.abc import Iterator, Mapping, Sequence
from typing import TYPE_CHECKING, Any

from repro.cells.library import CellLibrary
from repro.errors import SimulationError
from repro.netlist.circuit import Circuit
from repro.netlist.gates import GateType
from repro.obs.trace import span, traced_task
from repro.simulation.backends.base import Backend, SimState
from repro.simulation.streaming import (
    PlanByteStore,
    episode_window_ingredients,
    plan_byte_map,
    resolve_stream_budget,
    shard_bounds,
    state_elements,
    stream_episode_ingredients,
    stream_fault_words,
    window_word,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle broken at runtime
    import numpy as np

    from repro.atpg.faults import Fault
    from repro.atpg.faultsim import FaultSimResult
    from repro.campaign.pool import WorkerPool
    from repro.simulation.episode import EpisodeBatchResult, EpisodePlan
    from repro.simulation.fault_episode import FaultEpisodePlan

__all__ = ["ShardedBackend", "shard_bounds", "DEFAULT_SHARDS_ENV"]

#: Environment variable supplying the default worker count.
DEFAULT_SHARDS_ENV = "REPRO_SIM_SHARDS"

#: ``uint64``-element budget of one episode chunk's state matrix
#: (lines x words), ~32 MiB — the same order as the fault kernel's
#: batch budget.  Plans that fit run inline on the inner backend.
_EPISODE_ELEMENT_BUDGET = 1 << 22

# ``shard_bounds`` (and the byte-map slicing helpers) now live in
# :mod:`repro.simulation.streaming` — the canonical home shared by
# shard partitioning and stream windowing; the historical aliases stay
# importable from here.
_plan_byte_map = plan_byte_map
_window_word = window_word


def _simulate_shard(payload: tuple[str, Circuit, "Sequence[Fault]",
                                   dict[str, int], int, bool]
                    ) -> "FaultSimResult":
    """Worker entry point: one shard on the inner backend (picklable)."""
    inner_name, circuit, faults, input_words, n, drop = payload
    from repro.simulation.backends import get_backend
    return get_backend(inner_name).fault_simulate_batch(
        circuit, faults, input_words, n, drop=drop)


#: Worker-side circuit intern table for the persistent-pool path.
#: Every call ships a freshly unpickled circuit copy; the per-circuit
#: plan/schedule caches key on object identity, so without interning a
#: persistent worker would rebuild cone plans on every call.  Keyed by
#: content fingerprint, bounded LRU.
_INTERN_MAX = 8
_INTERNED_CIRCUITS: "OrderedDict[str, Circuit]" = OrderedDict()


def _interned_circuit(circuit: Circuit, fingerprint: str) -> Circuit:
    cached = _INTERNED_CIRCUITS.get(fingerprint)
    if cached is None:
        _INTERNED_CIRCUITS[fingerprint] = cached = circuit
        while len(_INTERNED_CIRCUITS) > _INTERN_MAX:
            _INTERNED_CIRCUITS.popitem(last=False)
    else:
        _INTERNED_CIRCUITS.move_to_end(fingerprint)
    return cached


def _simulate_shard_pooled(payload: tuple[str, Circuit, str,
                                          "Sequence[Fault]",
                                          dict[str, int], int, bool]
                           ) -> "FaultSimResult":
    """Persistent-pool worker: one shard, circuit interned by content."""
    inner_name, circuit, fingerprint, faults, input_words, n, drop = \
        payload
    circuit = _interned_circuit(circuit, fingerprint)
    from repro.simulation.backends import get_backend
    return get_backend(inner_name).fault_simulate_batch(
        circuit, faults, input_words, n, drop=drop)


def _episode_chunk_result(inner_name: str, circuit: Circuit,
                          words: dict[str, int], n: int, leakage: bool,
                          keep: bool,
                          stream_budget: int | None = None
                          ) -> tuple[dict[str, int],
                                     dict[str, tuple[int, int]],
                                     "dict[str, np.ndarray] | None",
                                     dict[str, int] | None]:
    """Simulate one cycle-range chunk and distil the merge ingredients.

    Returns ``(transitions, edge bits, pattern counts, words)`` — the
    integer-exact ingredients the parent merges: per-line transition
    counts within the chunk, each line's (first, last) cycle bit for
    the boundary transitions between neighbouring chunks, per-gate
    leakage pattern counts (``None`` unless leakage was requested) and
    the chunk's packed words (``None`` unless waveforms were kept).

    With a ``stream_budget`` the chunk exceeds, the worker streams its
    own sub-windows (sharding composes with streaming) and folds them
    before returning — the parent receives the exact ingredients an
    unstreamed chunk would have produced.
    """
    from repro.simulation.backends import get_backend
    backend = get_backend(inner_name)
    if stream_budget is not None:
        elements = state_elements(len(words), circuit, n)
        if elements > stream_budget:
            store = PlanByteStore(words, n)
            needed = -(elements // -stream_budget)
            bounds = shard_bounds(n, min(needed, n))
            return stream_episode_ingredients(backend, circuit, store, n,
                                              leakage, keep, bounds)
    return episode_window_ingredients(backend, circuit, words, n,
                                      leakage, keep)


def _simulate_episode_chunk(payload: tuple[str, Circuit, str,
                                           dict[str, int], int, bool,
                                           bool, int | None]
                            ) -> tuple[dict[str, int],
                                       dict[str, tuple[int, int]],
                                       "dict[str, np.ndarray] | None",
                                       dict[str, int] | None]:
    """Pool/spawn worker: one episode chunk, circuit interned by
    content."""
    (inner_name, circuit, fingerprint, words, n, leakage, keep,
     stream_budget) = payload
    circuit = _interned_circuit(circuit, fingerprint)
    return _episode_chunk_result(inner_name, circuit, words, n, leakage,
                                 keep, stream_budget)


def _simulate_episode_chunk_fork(bounds: tuple[int, int]
                                 ) -> tuple[dict[str, int],
                                            dict[str, tuple[int, int]],
                                            "dict[str, np.ndarray] | None",
                                            dict[str, int] | None]:
    """Fork-context worker: slice the inherited plan by ``bounds``.

    The circuit, its warmed schedule cache and the stimulus byte map
    arrive by copy-on-write inheritance (like the fault-shard fork
    path), so nothing is pickled per chunk and each worker only pays
    O(window) for slicing its own cycle window.
    """
    assert _FORK_JOB is not None
    inner_name, circuit, byte_map, leakage, keep, stream_budget = \
        _FORK_JOB
    start, stop = bounds
    words = {line: _window_word(raw, start, stop)
             for line, raw in byte_map.items()}
    return _episode_chunk_result(inner_name, circuit, words,
                                 stop - start, leakage, keep,
                                 stream_budget)


#: Fork-path job shared with workers by inheritance instead of pickling.
#: Children see the parent's warmed schedule / fault-plan caches (and,
#: for the numpy inner engine, the settled fault-free state) copy-on-
#: write, so a shard only pays for its own slice of the work.  Set
#: strictly around the ``Pool`` construction; not thread-safe (the
#: simulation substrate is process-parallel, not thread-parallel).
_FORK_JOB: tuple | None = None


def _simulate_shard_fork(bounds: tuple[int, int]) -> "FaultSimResult":
    """Fork-context worker: slice the inherited job by ``bounds``."""
    assert _FORK_JOB is not None
    inner_name, circuit, faults, input_words, n, drop = _FORK_JOB
    start, stop = bounds
    from repro.simulation.backends import get_backend
    return get_backend(inner_name).fault_simulate_batch(
        circuit, faults[start:stop], input_words, n, drop=drop)


def _simulate_shard_fork_state(bounds: tuple[int, int]) -> "FaultSimResult":
    """Fork-context worker over an inherited, already-settled state.

    The parent ran the fault-free simulation once; every worker replays
    only its fault slice on the shared (copy-on-write) matrix instead of
    re-simulating the whole circuit per shard.
    """
    assert _FORK_JOB is not None
    state, faults, drop = _FORK_JOB
    start, stop = bounds
    from repro.simulation.backends.fault_kernel import fault_simulate_matrix
    return fault_simulate_matrix(state, faults[start:stop], drop=drop)


def _simulate_fault_window_fork(bounds: tuple[int, int]
                                ) -> "FaultSimResult":
    """Fork-context worker: the whole fault list on one pattern window.

    The circuit, the fault list and the stimulus byte map arrive by
    copy-on-write inheritance (the ``_FORK_JOB`` machinery); each
    worker slices its own word-aligned cycle window in O(window) and
    good-simulates only that window, so the fault-free work is split
    across workers instead of duplicated.
    """
    assert _FORK_JOB is not None
    inner_name, circuit, faults, byte_map, drop = _FORK_JOB
    start, stop = bounds
    words = {line: _window_word(raw, start, stop)
             for line, raw in byte_map.items()}
    from repro.simulation.backends import get_backend
    return get_backend(inner_name).fault_simulate_batch(
        circuit, faults, words, stop - start, drop=drop)


def _simulate_shard_fork_stream(bounds: tuple[int, int]
                                ) -> "FaultSimResult":
    """Fork-context worker: stream one fault slice's pattern windows.

    The streamed composition of the fault axis: each worker owns a
    contiguous fault slice (like :func:`_simulate_shard_fork`) but
    replays it over pattern windows under the inherited stream budget,
    so no worker ever materializes the full good machine or detection
    matrix.
    """
    assert _FORK_JOB is not None
    inner_name, circuit, faults, byte_map, n, budget = _FORK_JOB
    start, stop = bounds
    from repro.simulation.backends import get_backend
    store = PlanByteStore.from_bytes(byte_map, n)
    return stream_fault_words(get_backend(inner_name), circuit,
                              faults[start:stop], store, n, budget)


def _simulate_shard_pooled_stream(payload: tuple[str, Circuit, str,
                                                 "Sequence[Fault]",
                                                 dict[str, bytes], int,
                                                 int]
                                  ) -> "FaultSimResult":
    """Pool/spawn worker: stream one fault slice's pattern windows."""
    inner_name, circuit, fingerprint, faults, byte_map, n, budget = \
        payload
    circuit = _interned_circuit(circuit, fingerprint)
    from repro.simulation.backends import get_backend
    store = PlanByteStore.from_bytes(byte_map, n)
    return stream_fault_words(get_backend(inner_name), circuit, faults,
                              store, n, budget)


class ShardedBackend(Backend):
    """Fault-list sharding over ``multiprocessing`` workers.

    Parameters
    ----------
    inner:
        Name of the engine each worker (and the inline fast path) runs.
    shards:
        Worker count; ``None`` defers to ``$REPRO_SIM_SHARDS`` at call
        time, falling back to ``os.cpu_count()``.
    min_faults_per_shard:
        Never split below this many faults per worker; lists smaller
        than two shards' worth run inline on the inner backend.
    pool:
        Externally owned persistent :class:`~repro.campaign.pool.
        WorkerPool`; shard dispatch then reuses its live workers
        instead of forking a fresh pool per call.  The caller owns the
        pool's lifetime.  When unset, a started process-wide shared
        pool (:func:`repro.campaign.pool.ensure_shared_pool`) is picked
        up opportunistically.
    episode_budget:
        ``uint64``-element budget of one episode chunk's state matrix
        (lines x words); plans whose whole matrix fits run inline on
        the inner backend, larger plans split along the cycle axis.
        Defaults to ~32 MiB per chunk.
    """

    name = "sharded"

    def __init__(self, inner: str = "numpy", shards: int | None = None,
                 min_faults_per_shard: int = 256,
                 pool: "WorkerPool | None" = None,
                 episode_budget: int | None = None):
        if inner == self.name:
            raise SimulationError("sharded backend cannot nest itself")
        if shards is not None and shards < 1:
            raise SimulationError("shards must be >= 1")
        if min_faults_per_shard < 1:
            raise SimulationError("min_faults_per_shard must be >= 1")
        if episode_budget is not None and episode_budget < 1:
            raise SimulationError("episode_budget must be >= 1")
        self.inner_name = inner
        self.shards = shards
        self.min_faults_per_shard = min_faults_per_shard
        self.pool = pool
        self.episode_budget = episode_budget if episode_budget is not None \
            else _EPISODE_ELEMENT_BUDGET

    @contextlib.contextmanager
    def using_pool(self, pool: "WorkerPool") -> Iterator["ShardedBackend"]:
        """Temporarily dispatch shards through ``pool``.

        Restores the previous pool (usually ``None``) on exit; the
        pool itself is not closed — the caller owns it.
        """
        previous = self.pool
        self.pool = pool
        try:
            yield self
        finally:
            self.pool = previous

    def _resolve_pool(self) -> "WorkerPool | None":
        """The pool shard dispatch should use, if any."""
        if self.pool is not None:
            return self.pool
        from repro.campaign.pool import active_shared_pool
        return active_shared_pool()

    # ------------------------------------------------------------------ #
    # plain packed simulation: pure delegation
    # ------------------------------------------------------------------ #

    def _inner(self) -> Backend:
        from repro.simulation.backends import get_backend
        return get_backend(self.inner_name)

    def run(self, circuit: Circuit, input_words: Mapping[str, int],
            n: int) -> SimState:
        return self._inner().run(circuit, input_words, n)

    def eval_gate_packed(self, gtype: GateType, words: Sequence[int],
                         n: int) -> int:
        return self._inner().eval_gate_packed(gtype, words, n)

    # ------------------------------------------------------------------ #
    # pattern/cycle-axis sharded episode simulation
    # ------------------------------------------------------------------ #

    def episode_chunks(self, plan: "EpisodePlan") -> int:
        """Cycle-axis chunk count for ``plan`` under the memory budget.

        ``1`` (inline on the inner backend) when the plan's whole state
        matrix fits the per-chunk element budget; otherwise at least
        enough chunks to respect the budget, rounded up to the
        configured worker count so an oversized plan also parallelizes.
        """
        n_lines = len(plan.waveforms) + len(plan.circuit.topo_order()) + 1
        n_words = (plan.n_cycles + 63) // 64
        needed = -(n_lines * n_words // -self.episode_budget)
        if needed <= 1:
            return 1
        return min(plan.n_cycles, max(needed, self.configured_shards()))

    def simulate_episode_batch(self, plan: "EpisodePlan",
                               library: CellLibrary | None = None,
                               collect_leakage: bool = True,
                               keep_waveforms: bool = False,
                               stream_budget: int | None = None
                               ) -> "EpisodeBatchResult":
        """Shard the plan's cycle axis across workers and merge exactly.

        Chunks are contiguous cycle ranges; every chunk is one plain
        packed simulation on the inner engine.  The merge is
        integer-exact (transition counts add, with one extra transition
        per chunk boundary where the edge bits differ; leakage pattern
        counts add and are priced once in table order; kept waveforms
        concatenate by shifting), so the result never depends on the
        chunk count — pinned against the unsharded pass by the
        differential property tests.

        Sharding composes with streaming: under a resolved
        ``stream_budget`` every chunk worker streams its own
        sub-windows (see :func:`_episode_chunk_result`), and the
        inline single-chunk path delegates the budget to the inner
        engine — peak memory per process is one window either way.
        """
        from repro.cells.library import default_library
        library = library or default_library()
        budget = resolve_stream_budget(stream_budget)
        n_chunks = self.episode_chunks(plan)
        if n_chunks <= 1:
            return self._inner().simulate_episode_batch(
                plan, library, collect_leakage=collect_leakage,
                keep_waveforms=keep_waveforms,
                stream_budget=budget or 0)

        bounds = shard_bounds(plan.n_cycles, n_chunks)
        processes = min(len(bounds), self.configured_shards())
        pool = self._resolve_pool()
        with span("shard.scatter", axis="cycle", chunks=len(bounds),
                  processes=processes):
            if pool is not None or \
                    multiprocessing.get_start_method(allow_none=False) \
                    != "fork":
                # Pool/spawn paths ship pre-sliced chunk stimuli; one
                # O(plan) byte conversion, then each window is O(window).
                # Workers intern the circuit by content fingerprint.
                fingerprint = plan.circuit.fingerprint()
                byte_map = _plan_byte_map(plan.waveforms, plan.n_cycles)
                payloads: list[Any] = [
                    (self.inner_name, plan.circuit, fingerprint,
                     {line: _window_word(raw, start, stop)
                      for line, raw in byte_map.items()},
                     stop - start, collect_leakage, keep_waveforms, budget)
                    for start, stop in bounds
                ]
                if pool is not None:
                    parts = pool.map(_simulate_episode_chunk, payloads)
                else:  # pragma: no cover - non-fork platforms
                    ctx = multiprocessing.get_context("spawn")
                    with ctx.Pool(processes=processes) as mp_pool:
                        parts = mp_pool.map(
                            traced_task(_simulate_episode_chunk),
                            payloads)
            else:
                # Fork path: the circuit, its warmed schedule cache and
                # the stimulus byte map inherit copy-on-write; workers
                # slice their own cycle windows (nothing pickled per
                # chunk).
                if self.inner_name == "numpy":
                    from repro.simulation.schedule import cached_schedule
                    cached_schedule(plan.circuit)
                ctx = multiprocessing.get_context("fork")
                global _FORK_JOB
                _FORK_JOB = (self.inner_name, plan.circuit,
                             _plan_byte_map(plan.waveforms, plan.n_cycles),
                             collect_leakage, keep_waveforms, budget)
                try:
                    with ctx.Pool(processes=processes) as mp_pool:
                        parts = mp_pool.map(
                            traced_task(_simulate_episode_chunk_fork),
                            bounds)
                finally:
                    _FORK_JOB = None
        with span("shard.merge", axis="cycle", chunks=len(bounds)):
            return self._merge_episode(plan, bounds, parts, library,
                                       collect_leakage, keep_waveforms)

    @staticmethod
    def _merge_episode(plan: "EpisodePlan",
                       bounds: Sequence[tuple[int, int]],
                       parts: Sequence[tuple], library: CellLibrary,
                       collect_leakage: bool, keep_waveforms: bool
                       ) -> "EpisodeBatchResult":
        from repro.leakage.estimator import leakage_from_pattern_counts
        from repro.simulation.episode import EpisodeBatchResult

        # Transition counts add across chunks; a boundary between two
        # chunks contributes one more transition per line whose last
        # bit of the left chunk differs from the first bit of the
        # right.  Entry order follows the inner backend's dict.
        transitions = dict(parts[0][0])
        for left, right in zip(parts, parts[1:]):
            left_edges, right_trans, right_edges = \
                left[1], right[0], right[1]
            for line, count in right_trans.items():
                transitions[line] += count
                if left_edges[line][1] != right_edges[line][0]:
                    transitions[line] += 1

        leakage_sum: dict[str, float] = {}
        if collect_leakage:
            merged_counts = {line: arr.copy()
                             for line, arr in parts[0][2].items()}
            for part in parts[1:]:
                for line, arr in part[2].items():
                    merged_counts[line] += arr
            leakage_sum = leakage_from_pattern_counts(
                plan.circuit, merged_counts, library)

        waveforms: dict[str, int] | None = None
        if keep_waveforms:
            waveforms = dict(parts[0][3])
            for (start, _stop), part in zip(bounds[1:], parts[1:]):
                for line, word in part[3].items():
                    waveforms[line] |= word << start
        return EpisodeBatchResult(
            n_cycles=plan.n_cycles,
            transitions=transitions,
            leakage_sum_na=leakage_sum,
            offsets=plan.offsets,
            lengths=plan.lengths,
            waveforms=waveforms,
        )

    # ------------------------------------------------------------------ #
    # sharded fault simulation
    # ------------------------------------------------------------------ #

    def configured_shards(self) -> int:
        """The configured worker count (flag, session, env, pool or
        CPU count)."""
        shards = self.shards
        if shards is None:
            from repro.runtime import session_defaults
            shards = session_defaults().shards
        if shards is None:
            env = os.environ.get(DEFAULT_SHARDS_ENV, "")
            if env:
                try:
                    shards = int(env)
                except ValueError:
                    raise SimulationError(
                        f"${DEFAULT_SHARDS_ENV} must be an integer, "
                        f"got {env!r}") from None
            else:
                pool = self._resolve_pool()
                shards = pool.processes if pool is not None \
                    else os.cpu_count() or 1
        if shards < 1:
            raise SimulationError(
                f"invalid shard count {shards} "
                f"(check ${DEFAULT_SHARDS_ENV})")
        return shards

    def effective_shards(self, n_faults: int) -> int:
        """Worker count actually used for ``n_faults`` faults."""
        by_size = n_faults // self.min_faults_per_shard
        return max(1, min(self.configured_shards(), by_size))

    def fault_simulate_batch(self, circuit: Circuit,
                             faults: Sequence[Fault],
                             input_words: Mapping[str, int], n: int,
                             drop: bool = True,
                             cone_cache: dict[str, list[str]] | None = None
                             ) -> FaultSimResult:
        inner = self._inner()
        n_shards = self.effective_shards(len(faults))
        if n_shards <= 1:
            return inner.fault_simulate_batch(
                circuit, faults, input_words, n,
                drop=drop, cone_cache=cone_cache)
        return self._shard_fault_axis(circuit, list(faults),
                                      dict(input_words), n, drop,
                                      n_shards)

    def fault_simulate_plan(self, plan: "FaultEpisodePlan",
                            drop: bool = True,
                            stream_budget: int | None = None
                            ) -> "FaultSimResult":
        """Two-axis sharded replay of a compiled fault x pattern plan.

        Drop-mode runs shard the **fault axis** (each worker replays
        its contiguous fault slice against all patterns — dropping is
        per fault, so fault-major keeps every worker's early-outs);
        no-drop detection matrices shard the **pattern axis** into
        word-aligned cycle windows (every fault is refined on every
        pattern anyway, and splitting the patterns also splits the
        fault-free simulation across workers).  Both merges are
        integer-exact — shard-ordered concatenation resp. an OR of
        window detection words — so the result never depends on the
        axis or the shard count.

        Sharding composes with streaming: under a resolved
        ``stream_budget`` a plan exceeds, fault-axis workers stream
        pattern windows of their own fault slice (never materializing
        the good machine), and the pattern axis raises its window
        count so every window fits the budget.
        """
        inner = self._inner()
        budget = resolve_stream_budget(stream_budget)
        if budget is not None and plan.state_elements() <= budget:
            budget = None
        if drop:
            n_shards = self.effective_shards(plan.n_faults)
            if n_shards <= 1:
                return inner.fault_simulate_plan(plan, drop=drop,
                                                 stream_budget=budget or 0)
            return self._shard_fault_axis(
                plan.circuit, list(plan.faults), dict(plan.input_words),
                plan.n, drop, n_shards,
                good_state=lambda: plan.good_state(inner),
                stream_budget=budget)
        n_shards = min(self.configured_shards(), plan.n_words)
        if budget is not None:
            needed = -(plan.state_elements() // -budget)
            n_shards = min(plan.n_words, max(n_shards, needed))
        if n_shards <= 1 or plan.n_faults < self.min_faults_per_shard:
            # Tiny matrices (or single-word pattern sets) run inline:
            # forking costs more than the window work saves.
            return inner.fault_simulate_plan(plan, drop=drop,
                                             stream_budget=budget or 0)
        return self._shard_pattern_axis(plan, drop, n_shards)

    def _shard_fault_axis(self, circuit: Circuit, faults: "list[Fault]",
                          words: dict[str, int], n: int, drop: bool,
                          n_shards: int,
                          good_state: "Any | None" = None,
                          stream_budget: int | None = None
                          ) -> FaultSimResult:
        """Contiguous fault-list shards over workers (stable merge).

        ``good_state`` (a thunk) supplies the settled numpy state for
        the fork path; plan-based calls pass the plan's memoized state
        so repeated dispatches on the same stimulus never re-simulate
        the good machine.  A set ``stream_budget`` routes every worker
        through the streamed pattern-window replay of its fault slice
        instead (the memoized state is deliberately bypassed — it *is*
        the resident matrix streaming avoids).
        """
        if stream_budget is not None:
            return self._shard_fault_axis_stream(circuit, faults, words,
                                                 n, n_shards,
                                                 stream_budget)
        bounds = shard_bounds(len(faults), n_shards)
        pool = self._resolve_pool()
        with span("shard.scatter", axis="fault", shards=len(bounds)):
            if pool is not None:
                # Persistent-pool path: no per-call fork.  Ship each
                # shard as a payload; workers intern the circuit by
                # content fingerprint so their plan caches survive
                # across calls.
                fingerprint = circuit.fingerprint()
                parts = pool.map(_simulate_shard_pooled, [
                    (self.inner_name, circuit, fingerprint,
                     faults[start:stop], words, n, drop)
                    for start, stop in bounds
                ])
            # Fork only where it is the platform default (Linux): merely
            # *available* fork (e.g. macOS, where spawn is the default
            # because fork-without-exec is unsafe under Accelerate/ObjC)
            # is not enough.
            elif multiprocessing.get_start_method(allow_none=False) == \
                    "fork":
                # Fork path: children inherit the parent's warmed caches
                # copy-on-write, so pay the expensive shared work
                # (fanout cones, levelized schedule, the fault-free
                # simulation for the numpy engine) once here instead of
                # once per worker per call.
                self._warm_parent_caches(circuit, faults)
                ctx = multiprocessing.get_context("fork")
                global _FORK_JOB
                if self.inner_name == "numpy":
                    state = good_state() if good_state is not None \
                        else self._inner().run(circuit, words, n)
                    _FORK_JOB = (state, faults, drop)
                    worker = _simulate_shard_fork_state
                else:
                    _FORK_JOB = (self.inner_name, circuit, faults, words,
                                 n, drop)
                    worker = _simulate_shard_fork
                try:
                    with ctx.Pool(processes=len(bounds)) as pool:
                        parts = pool.map(traced_task(worker), bounds)
                finally:
                    _FORK_JOB = None
            else:  # pragma: no cover - non-fork platforms
                payloads: list[Any] = [
                    (self.inner_name, circuit, faults[start:stop], words,
                     n, drop)
                    for start, stop in bounds
                ]
                ctx = multiprocessing.get_context("spawn")
                with ctx.Pool(processes=len(payloads)) as mp_pool:
                    parts = mp_pool.map(traced_task(_simulate_shard),
                                        payloads)
        with span("shard.merge", axis="fault", shards=len(bounds)):
            return self._merge(parts)

    def _shard_fault_axis_stream(self, circuit: Circuit,
                                 faults: "list[Fault]",
                                 words: dict[str, int], n: int,
                                 n_shards: int,
                                 budget: int) -> FaultSimResult:
        """Fault-axis shards whose workers stream pattern windows.

        Same contiguous fault partition and stable merge as
        :meth:`_shard_fault_axis`, but each worker replays its slice
        window-by-window under the stream budget (drop-free windows,
        OR-folded — bit-identical in both drop modes), so no process
        ever holds the full good machine or its slice's detection
        matrix.
        """
        bounds = shard_bounds(len(faults), n_shards)
        byte_map = _plan_byte_map(words, n)
        pool = self._resolve_pool()
        with span("shard.scatter", axis="fault-stream",
                  shards=len(bounds)):
            if pool is not None or \
                    multiprocessing.get_start_method(allow_none=False) \
                    != "fork":
                fingerprint = circuit.fingerprint()
                payloads: list[Any] = [
                    (self.inner_name, circuit, fingerprint,
                     faults[start:stop], byte_map, n, budget)
                    for start, stop in bounds
                ]
                if pool is not None:
                    parts = pool.map(_simulate_shard_pooled_stream,
                                     payloads)
                else:  # pragma: no cover - non-fork platforms
                    ctx = multiprocessing.get_context("spawn")
                    with ctx.Pool(processes=len(payloads)) as mp_pool:
                        parts = mp_pool.map(
                            traced_task(_simulate_shard_pooled_stream),
                            payloads)
            else:
                # Fork path: circuit, fault list and stimulus byte map
                # inherit copy-on-write; each worker streams its own
                # slice.
                self._warm_parent_caches(circuit, faults)
                ctx = multiprocessing.get_context("fork")
                global _FORK_JOB
                _FORK_JOB = (self.inner_name, circuit, faults, byte_map,
                             n, budget)
                try:
                    with ctx.Pool(processes=len(bounds)) as mp_pool:
                        parts = mp_pool.map(
                            traced_task(_simulate_shard_fork_stream),
                            bounds)
                finally:
                    _FORK_JOB = None
        with span("shard.merge", axis="fault-stream", shards=len(bounds)):
            return self._merge(parts)

    def _shard_pattern_axis(self, plan: "FaultEpisodePlan", drop: bool,
                            n_shards: int) -> FaultSimResult:
        """Word-aligned cycle windows over workers, OR-merged.

        Windows are contiguous ``uint64``-word ranges of the pattern
        axis (the last window absorbs the tail bits), so each worker's
        detection words are exact column slices of the full matrix:
        the merge shifts them back to their window offset and ORs —
        bit-identical to the unsharded plan for every window count.
        """
        circuit = plan.circuit
        faults = list(plan.faults)
        word_bounds = shard_bounds(plan.n_words, n_shards)
        bounds = [(w0 * 64, min(plan.n, w1 * 64))
                  for w0, w1 in word_bounds]
        # Streaming can raise the window count past the worker count;
        # extra windows queue on the pool rather than spawning workers.
        processes = min(len(bounds), self.configured_shards())
        byte_map = _plan_byte_map(plan.input_words, plan.n)
        pool = self._resolve_pool()
        with span("shard.scatter", axis="pattern", windows=len(bounds),
                  processes=processes):
            if pool is not None or \
                    multiprocessing.get_start_method(allow_none=False) \
                    != "fork":
                # Pool/spawn paths ship pre-sliced window stimuli (one
                # O(plan) byte conversion, each window O(window)); the
                # payload shape matches the fault-axis shard workers, so
                # the same interning entry points serve both axes.
                fingerprint = circuit.fingerprint()
                payloads: list[Any] = [
                    (self.inner_name, circuit, fingerprint, faults,
                     {line: _window_word(raw, start, stop)
                      for line, raw in byte_map.items()},
                     stop - start, drop)
                    for start, stop in bounds
                ]
                if pool is not None:
                    parts = pool.map(_simulate_shard_pooled, payloads)
                else:  # pragma: no cover - non-fork platforms
                    spawn_payloads = [payload[:2] + payload[3:]
                                      for payload in payloads]
                    ctx = multiprocessing.get_context("spawn")
                    with ctx.Pool(processes=processes) as mp_pool:
                        parts = mp_pool.map(
                            traced_task(_simulate_shard),
                            spawn_payloads)
            else:
                # Fork path: circuit, fault list and stimulus byte map
                # inherit copy-on-write; workers slice their own
                # windows.
                self._warm_parent_caches(circuit, faults)
                ctx = multiprocessing.get_context("fork")
                global _FORK_JOB
                _FORK_JOB = (self.inner_name, circuit, faults, byte_map,
                             drop)
                try:
                    with ctx.Pool(processes=processes) as mp_pool:
                        parts = mp_pool.map(
                            traced_task(_simulate_fault_window_fork),
                            bounds)
                finally:
                    _FORK_JOB = None
        with span("shard.merge", axis="pattern", windows=len(bounds)):
            return self._merge_pattern_axis(faults, bounds, parts)

    @staticmethod
    def _merge_pattern_axis(faults: "Sequence[Fault]",
                            bounds: Sequence[tuple[int, int]],
                            parts: "Sequence[FaultSimResult]"
                            ) -> FaultSimResult:
        """OR window detection words back into full-set words.

        Every (fault, pattern) detection bit is computed independently,
        so the word of window ``[start, stop)`` is exactly bits
        ``start..stop-1`` of the full word; the merge shifts and ORs.
        ``detected``/``remaining`` are rebuilt in fault-input order —
        identical to the single-pass reference.
        """
        from repro.atpg.faultsim import FaultSimResult
        merged: dict[Fault, int] = {}
        for (start, _stop), part in zip(bounds, parts):
            for fault, word in part.detected.items():
                merged[fault] = merged.get(fault, 0) | (word << start)
        detected: dict[Fault, int] = {}
        remaining: list[Fault] = []
        for fault in faults:
            word = merged.get(fault, 0)
            if word:
                detected[fault] = word
            else:
                remaining.append(fault)
        return FaultSimResult(detected=detected, remaining=remaining)

    @staticmethod
    def _merge(parts: "Sequence[FaultSimResult]") -> "FaultSimResult":
        """Stable merge: shard order == input order."""
        from repro.atpg.faultsim import FaultSimResult
        detected: dict[Fault, int] = {}
        remaining: list[Fault] = []
        for part in parts:
            detected.update(part.detected)
            remaining.extend(part.remaining)
        return FaultSimResult(detected=detected, remaining=remaining)

    def _warm_parent_caches(self, circuit: Circuit,
                            faults: Sequence[Fault]) -> None:
        """Populate per-circuit caches the forked workers will inherit.

        Only the numpy inner engine keeps a plan cache worth warming;
        cone extraction dominates its cold-start cost and is identical
        for every worker, so paying it once in the parent (memoized
        across calls) turns each fork into pure kernel work.
        """
        if self.inner_name != "numpy":
            return
        from repro.simulation.backends.fault_kernel import cached_fault_plan
        plan = cached_fault_plan(circuit)
        for line in {fault.line for fault in faults}:
            plan.cone_rows(line)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"<ShardedBackend inner={self.inner_name!r} "
                f"shards={self.shards!r}>")
