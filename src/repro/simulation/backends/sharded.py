"""Process-sharded fault simulation meta-backend.

``ShardedBackend`` wraps an inner engine (``numpy`` by default).  Plain
packed simulation delegates straight to the inner backend; fault
simulation partitions the fault list into contiguous shards, simulates
each shard in its own ``multiprocessing`` worker with the inner engine,
and merges the per-shard :class:`~repro.atpg.faultsim.FaultSimResult`
objects in shard order.

Determinism guarantees:

* shards are contiguous slices of the input fault list, so the merged
  ``detected`` insertion order and ``remaining`` ordering equal the
  single-process result exactly;
* every shard runs the same bit-identical kernel on the same patterns,
  so detection words never depend on the shard count (the differential
  property tests pin this against the big-int reference);
* fault dropping happens per shard — each worker drops its own detected
  faults — which is exactly the reference semantics, because dropping
  never crosses fault boundaries within one call.

Short fault lists (below ``min_faults_per_shard`` per worker) run inline
on the inner backend: forking costs more than it saves there, and the
result is identical by construction.

Dispatch goes to, in precedence order:

1. an externally owned persistent :class:`~repro.campaign.pool.
   WorkerPool` (``pool=`` at construction, or temporarily via
   :meth:`ShardedBackend.using_pool`) — live workers, no per-call fork;
   workers intern circuits by content fingerprint so their per-circuit
   plan caches keep hitting across calls;
2. the process-wide shared pool, when someone started one
   (:func:`repro.campaign.pool.ensure_shared_pool`);
3. a fresh per-call ``multiprocessing`` pool (fork where it is the
   platform default, spawn elsewhere) — the original behaviour.
"""

from __future__ import annotations

import contextlib
import multiprocessing
import os
from collections import OrderedDict
from collections.abc import Iterator, Mapping, Sequence
from typing import TYPE_CHECKING, Any

from repro.errors import SimulationError
from repro.netlist.circuit import Circuit
from repro.netlist.gates import GateType
from repro.simulation.backends.base import Backend, SimState

if TYPE_CHECKING:  # pragma: no cover - import cycle broken at runtime
    from repro.atpg.faults import Fault
    from repro.atpg.faultsim import FaultSimResult
    from repro.campaign.pool import WorkerPool

__all__ = ["ShardedBackend", "shard_bounds", "DEFAULT_SHARDS_ENV"]

#: Environment variable supplying the default worker count.
DEFAULT_SHARDS_ENV = "REPRO_SIM_SHARDS"


def shard_bounds(n_items: int, n_shards: int) -> list[tuple[int, int]]:
    """Contiguous, near-even ``[start, stop)`` slices of ``n_items``.

    The first ``n_items % n_shards`` shards get one extra item; empty
    shards are never produced.  Pure function so tests can pin the
    partition the workers see.
    """
    n_shards = max(1, min(n_shards, n_items))
    base, extra = divmod(n_items, n_shards)
    bounds: list[tuple[int, int]] = []
    start = 0
    for i in range(n_shards):
        stop = start + base + (1 if i < extra else 0)
        bounds.append((start, stop))
        start = stop
    return bounds


def _simulate_shard(payload: tuple[str, Circuit, "Sequence[Fault]",
                                   dict[str, int], int, bool]
                    ) -> "FaultSimResult":
    """Worker entry point: one shard on the inner backend (picklable)."""
    inner_name, circuit, faults, input_words, n, drop = payload
    from repro.simulation.backends import get_backend
    return get_backend(inner_name).fault_simulate_batch(
        circuit, faults, input_words, n, drop=drop)


#: Worker-side circuit intern table for the persistent-pool path.
#: Every call ships a freshly unpickled circuit copy; the per-circuit
#: plan/schedule caches key on object identity, so without interning a
#: persistent worker would rebuild cone plans on every call.  Keyed by
#: content fingerprint, bounded LRU.
_INTERN_MAX = 8
_INTERNED_CIRCUITS: "OrderedDict[str, Circuit]" = OrderedDict()


def _interned_circuit(circuit: Circuit, fingerprint: str) -> Circuit:
    cached = _INTERNED_CIRCUITS.get(fingerprint)
    if cached is None:
        _INTERNED_CIRCUITS[fingerprint] = cached = circuit
        while len(_INTERNED_CIRCUITS) > _INTERN_MAX:
            _INTERNED_CIRCUITS.popitem(last=False)
    else:
        _INTERNED_CIRCUITS.move_to_end(fingerprint)
    return cached


def _simulate_shard_pooled(payload: tuple[str, Circuit, str,
                                          "Sequence[Fault]",
                                          dict[str, int], int, bool]
                           ) -> "FaultSimResult":
    """Persistent-pool worker: one shard, circuit interned by content."""
    inner_name, circuit, fingerprint, faults, input_words, n, drop = \
        payload
    circuit = _interned_circuit(circuit, fingerprint)
    from repro.simulation.backends import get_backend
    return get_backend(inner_name).fault_simulate_batch(
        circuit, faults, input_words, n, drop=drop)


#: Fork-path job shared with workers by inheritance instead of pickling.
#: Children see the parent's warmed schedule / fault-plan caches (and,
#: for the numpy inner engine, the settled fault-free state) copy-on-
#: write, so a shard only pays for its own slice of the work.  Set
#: strictly around the ``Pool`` construction; not thread-safe (the
#: simulation substrate is process-parallel, not thread-parallel).
_FORK_JOB: tuple | None = None


def _simulate_shard_fork(bounds: tuple[int, int]) -> "FaultSimResult":
    """Fork-context worker: slice the inherited job by ``bounds``."""
    assert _FORK_JOB is not None
    inner_name, circuit, faults, input_words, n, drop = _FORK_JOB
    start, stop = bounds
    from repro.simulation.backends import get_backend
    return get_backend(inner_name).fault_simulate_batch(
        circuit, faults[start:stop], input_words, n, drop=drop)


def _simulate_shard_fork_state(bounds: tuple[int, int]) -> "FaultSimResult":
    """Fork-context worker over an inherited, already-settled state.

    The parent ran the fault-free simulation once; every worker replays
    only its fault slice on the shared (copy-on-write) matrix instead of
    re-simulating the whole circuit per shard.
    """
    assert _FORK_JOB is not None
    state, faults, drop = _FORK_JOB
    start, stop = bounds
    from repro.simulation.backends.fault_kernel import fault_simulate_matrix
    return fault_simulate_matrix(state, faults[start:stop], drop=drop)


class ShardedBackend(Backend):
    """Fault-list sharding over ``multiprocessing`` workers.

    Parameters
    ----------
    inner:
        Name of the engine each worker (and the inline fast path) runs.
    shards:
        Worker count; ``None`` defers to ``$REPRO_SIM_SHARDS`` at call
        time, falling back to ``os.cpu_count()``.
    min_faults_per_shard:
        Never split below this many faults per worker; lists smaller
        than two shards' worth run inline on the inner backend.
    pool:
        Externally owned persistent :class:`~repro.campaign.pool.
        WorkerPool`; shard dispatch then reuses its live workers
        instead of forking a fresh pool per call.  The caller owns the
        pool's lifetime.  When unset, a started process-wide shared
        pool (:func:`repro.campaign.pool.ensure_shared_pool`) is picked
        up opportunistically.
    """

    name = "sharded"

    def __init__(self, inner: str = "numpy", shards: int | None = None,
                 min_faults_per_shard: int = 256,
                 pool: "WorkerPool | None" = None):
        if inner == self.name:
            raise SimulationError("sharded backend cannot nest itself")
        if shards is not None and shards < 1:
            raise SimulationError("shards must be >= 1")
        if min_faults_per_shard < 1:
            raise SimulationError("min_faults_per_shard must be >= 1")
        self.inner_name = inner
        self.shards = shards
        self.min_faults_per_shard = min_faults_per_shard
        self.pool = pool

    @contextlib.contextmanager
    def using_pool(self, pool: "WorkerPool") -> Iterator["ShardedBackend"]:
        """Temporarily dispatch shards through ``pool``.

        Restores the previous pool (usually ``None``) on exit; the
        pool itself is not closed — the caller owns it.
        """
        previous = self.pool
        self.pool = pool
        try:
            yield self
        finally:
            self.pool = previous

    def _resolve_pool(self) -> "WorkerPool | None":
        """The pool shard dispatch should use, if any."""
        if self.pool is not None:
            return self.pool
        from repro.campaign.pool import active_shared_pool
        return active_shared_pool()

    # ------------------------------------------------------------------ #
    # plain packed simulation: pure delegation
    # ------------------------------------------------------------------ #

    def _inner(self) -> Backend:
        from repro.simulation.backends import get_backend
        return get_backend(self.inner_name)

    def run(self, circuit: Circuit, input_words: Mapping[str, int],
            n: int) -> SimState:
        return self._inner().run(circuit, input_words, n)

    def eval_gate_packed(self, gtype: GateType, words: Sequence[int],
                         n: int) -> int:
        return self._inner().eval_gate_packed(gtype, words, n)

    # ------------------------------------------------------------------ #
    # sharded fault simulation
    # ------------------------------------------------------------------ #

    def effective_shards(self, n_faults: int) -> int:
        """Worker count actually used for ``n_faults`` faults."""
        shards = self.shards
        if shards is None:
            env = os.environ.get(DEFAULT_SHARDS_ENV, "")
            if env:
                try:
                    shards = int(env)
                except ValueError:
                    raise SimulationError(
                        f"${DEFAULT_SHARDS_ENV} must be an integer, "
                        f"got {env!r}") from None
            else:
                pool = self._resolve_pool()
                shards = pool.processes if pool is not None \
                    else os.cpu_count() or 1
        if shards < 1:
            raise SimulationError(
                f"invalid shard count {shards} "
                f"(check ${DEFAULT_SHARDS_ENV})")
        by_size = n_faults // self.min_faults_per_shard
        return max(1, min(shards, by_size))

    def fault_simulate_batch(self, circuit: Circuit,
                             faults: Sequence[Fault],
                             input_words: Mapping[str, int], n: int,
                             drop: bool = True,
                             cone_cache: dict[str, list[str]] | None = None
                             ) -> FaultSimResult:
        inner = self._inner()
        n_shards = self.effective_shards(len(faults))
        if n_shards <= 1:
            return inner.fault_simulate_batch(
                circuit, faults, input_words, n,
                drop=drop, cone_cache=cone_cache)

        words = dict(input_words)
        faults = list(faults)
        bounds = shard_bounds(len(faults), n_shards)
        pool = self._resolve_pool()
        if pool is not None:
            # Persistent-pool path: no per-call fork.  Ship each shard
            # as a payload; workers intern the circuit by content
            # fingerprint so their plan caches survive across calls.
            fingerprint = circuit.fingerprint()
            parts = pool.map(_simulate_shard_pooled, [
                (self.inner_name, circuit, fingerprint,
                 faults[start:stop], words, n, drop)
                for start, stop in bounds
            ])
            return self._merge(parts)
        # Fork only where it is the platform default (Linux): merely
        # *available* fork (e.g. macOS, where spawn is the default
        # because fork-without-exec is unsafe under Accelerate/ObjC)
        # is not enough.
        if multiprocessing.get_start_method(allow_none=False) == "fork":
            # Fork path: children inherit the parent's warmed caches
            # copy-on-write, so pay the expensive shared work (fanout
            # cones, levelized schedule, the fault-free simulation for
            # the numpy engine) once here instead of once per worker
            # per call.
            self._warm_parent_caches(circuit, faults)
            ctx = multiprocessing.get_context("fork")
            global _FORK_JOB
            if self.inner_name == "numpy":
                state = self._inner().run(circuit, words, n)
                _FORK_JOB = (state, faults, drop)
                worker = _simulate_shard_fork_state
            else:
                _FORK_JOB = (self.inner_name, circuit, faults, words, n,
                             drop)
                worker = _simulate_shard_fork
            try:
                with ctx.Pool(processes=len(bounds)) as pool:
                    parts = pool.map(worker, bounds)
            finally:
                _FORK_JOB = None
        else:  # pragma: no cover - non-fork platforms (Windows/macOS)
            payloads: list[Any] = [
                (self.inner_name, circuit, faults[start:stop], words, n,
                 drop)
                for start, stop in bounds
            ]
            ctx = multiprocessing.get_context("spawn")
            with ctx.Pool(processes=len(payloads)) as mp_pool:
                parts = mp_pool.map(_simulate_shard, payloads)
        return self._merge(parts)

    @staticmethod
    def _merge(parts: "Sequence[FaultSimResult]") -> "FaultSimResult":
        """Stable merge: shard order == input order."""
        from repro.atpg.faultsim import FaultSimResult
        detected: dict[Fault, int] = {}
        remaining: list[Fault] = []
        for part in parts:
            detected.update(part.detected)
            remaining.extend(part.remaining)
        return FaultSimResult(detected=detected, remaining=remaining)

    def _warm_parent_caches(self, circuit: Circuit,
                            faults: Sequence[Fault]) -> None:
        """Populate per-circuit caches the forked workers will inherit.

        Only the numpy inner engine keeps a plan cache worth warming;
        cone extraction dominates its cold-start cost and is identical
        for every worker, so paying it once in the parent (memoized
        across calls) turns each fork into pure kernel work.
        """
        if self.inner_name != "numpy":
            return
        from repro.simulation.backends.fault_kernel import cached_fault_plan
        plan = cached_fault_plan(circuit)
        for line in {fault.line for fault in faults}:
            plan.cone_rows(line)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"<ShardedBackend inner={self.inner_name!r} "
                f"shards={self.shards!r}>")
