"""Array-API backend: the shared kernels on any conforming namespace.

This engine runs the exact kernel code of the ``numpy`` backend
(:mod:`repro.simulation.kernels`) against a pluggable array namespace —
``numpy`` by default, ``cupy`` or any other array-API-style library by
configuration — so a GPU/accelerator path needs zero kernel changes.
Results are bit-identical to every other engine by construction: the
kernels are shared, and the differential property suite enforces the
contract per registered backend.

Namespace selection follows the repository's runtime-knob convention,
in precedence order:

1. an explicit ``namespace=`` constructor argument (module or name);
2. the session default, :attr:`repro.runtime.RuntimeOptions.
   array_namespace` (the CLI's ``--array-namespace`` flag installs it);
3. the ``REPRO_ARRAY_NAMESPACE`` environment variable;
4. the built-in default, ``numpy``.

The namespace is resolved lazily at each dispatch, so installing a
session default retargets an already-registered backend instance.  Host
transfers happen only at merge boundaries: the initial stimulus upload,
the settled-waveform download after a schedule sweep, and one detection
matrix per fault tile.
"""

from __future__ import annotations

import importlib
import os
from collections.abc import Mapping, Sequence
from typing import TYPE_CHECKING, Any

import numpy as np

from repro.errors import SimulationError
from repro.netlist.circuit import Circuit
from repro.netlist.gates import GateType
from repro.obs.trace import span
from repro.simulation.backends.base import Backend
from repro.simulation.backends.numpy_backend import NumpyState
from repro.simulation.kernels import (
    eval_gate_rows,
    eval_schedule,
    initial_state,
    int_to_row,
    row_to_int,
    to_device,
    to_host,
)
from repro.simulation.schedule import cached_schedule
from repro.simulation.values import mask

if TYPE_CHECKING:  # pragma: no cover - runtime import would be cyclic
    from repro.atpg.faults import Fault
    from repro.atpg.faultsim import FaultSimResult
    from repro.simulation.fault_episode import FaultEpisodePlan

__all__ = ["ArrayApiBackend", "ArrayApiState", "resolve_array_namespace",
           "DEFAULT_NAMESPACE_ENV"]

#: Environment variable consulted for the default array namespace.
DEFAULT_NAMESPACE_ENV = "REPRO_ARRAY_NAMESPACE"

#: Namespace attributes the shared kernels call; probed at resolution
#: time so a non-conforming library fails fast with a clear error
#: instead of deep inside a levelized sweep.
_REQUIRED_SURFACE = ("asarray", "zeros", "empty", "where", "broadcast_to",
                     "reshape", "uint64")

_MODULE_CACHE: dict[str, Any] = {}


def resolve_array_namespace(spec: str | Any | None = None) -> Any:
    """Resolve an array-namespace spec into a namespace object.

    ``spec`` may be a module-like object (returned as-is after a
    conformance probe), an importable module name, or ``None`` — which
    walks the knob chain: session default
    (:attr:`repro.runtime.RuntimeOptions.array_namespace`), then
    ``$REPRO_ARRAY_NAMESPACE``, then ``numpy``.  Raises
    :class:`SimulationError` for an unimportable name or a namespace
    missing part of the kernel surface.
    """
    if spec is None:
        from repro.runtime import session_defaults
        spec = session_defaults().array_namespace
    if spec is None:
        spec = os.environ.get(DEFAULT_NAMESPACE_ENV, "") or "numpy"
    if isinstance(spec, str):
        cached = _MODULE_CACHE.get(spec)
        if cached is not None:
            return cached
        try:
            namespace = importlib.import_module(spec)
        except ImportError as exc:
            raise SimulationError(
                f"array namespace {spec!r} is not importable: "
                f"{exc}") from exc
    else:
        namespace = spec
    missing = [attr for attr in _REQUIRED_SURFACE
               if not hasattr(namespace, attr)]
    if missing:
        name = spec if isinstance(spec, str) else \
            getattr(namespace, "__name__", repr(namespace))
        raise SimulationError(
            f"array namespace {name!r} does not provide the kernel "
            f"surface: missing {', '.join(missing)}")
    if isinstance(spec, str):
        _MODULE_CACHE[spec] = namespace
    return namespace


class ArrayApiState(NumpyState):
    """Settled waveforms with both host and device residency.

    The host matrix (downloaded once at the end of the schedule sweep —
    the merge boundary) feeds every derived quantity through the
    :class:`NumpyState` analytics unchanged, which keeps transitions,
    leakage sums and pattern counts bit-identical by construction.  The
    device matrix stays resident so fault replay tiles read it without
    re-uploading.
    """

    def __init__(self, circuit: Circuit, n: int, schedule: Any,
                 matrix: np.ndarray, full_row: np.ndarray,
                 device_matrix: Any, namespace: Any):
        super().__init__(circuit, n, schedule, matrix, full_row)
        self.device_matrix = device_matrix
        self.namespace = namespace


class ArrayApiBackend(Backend):
    """The shared packed kernels on a configurable array namespace."""

    name = "array_api"

    def __init__(self, namespace: str | Any | None = None):
        self._namespace = namespace

    def _resolve(self) -> Any:
        return resolve_array_namespace(self._namespace)

    def run(self, circuit: Circuit, input_words: Mapping[str, int],
            n: int) -> ArrayApiState:
        xp = self._resolve()
        schedule = cached_schedule(circuit)
        n_words = (n + 63) // 64
        full = mask(n)
        full_row = int_to_row(full, n_words)
        host = initial_state(schedule, input_words, n, n_words, full,
                             full_row)
        device = to_device(xp, host)
        eval_schedule(xp, schedule, device, to_device(xp, full_row))
        return ArrayApiState(circuit, n, schedule, to_host(device),
                             full_row, device, xp)

    def eval_gate_packed(self, gtype: GateType, words: Sequence[int],
                         n: int) -> int:
        xp = self._resolve()
        n_words = (n + 63) // 64
        full_row = int_to_row(mask(n), n_words)
        if words:
            rows = np.stack([int_to_row(w, n_words) for w in words])
        else:
            rows = np.zeros((0, n_words), dtype="<u8")
        out = eval_gate_rows(xp, gtype, to_device(xp, rows),
                             to_device(xp, full_row), (n_words,))
        return row_to_int(to_host(out))

    def fault_simulate_batch(self, circuit: Circuit,
                             faults: "Sequence[Fault]",
                             input_words: Mapping[str, int], n: int,
                             drop: bool = True,
                             cone_cache: dict[str, list[str]] | None = None
                             ) -> "FaultSimResult":
        """Fused batched cone replay, tiles evaluated on the namespace.

        See :mod:`repro.simulation.backends.fault_kernel`; bit-identical
        to the scalar reference.  ``cone_cache`` (a string-keyed cache
        of the scalar path) is ignored — the kernel keeps its own
        per-circuit plan.
        """
        from repro.simulation.backends.fault_kernel import (
            fault_simulate_matrix,
        )
        state = self.run(circuit, input_words, n)
        return fault_simulate_matrix(state, faults, drop=drop,
                                     xp=state.namespace,
                                     matrix=state.device_matrix)

    def fault_simulate_plan(self, plan: "FaultEpisodePlan",
                            drop: bool = True,
                            stream_budget: int | None = None
                            ) -> "FaultSimResult":
        """Whole-plan replay on the 2-D-tiled kernel, namespace-resident.

        Mirrors :meth:`NumpyBackend.fault_simulate_plan`: the plan's
        memoized good-machine state (device matrix included) is settled
        once and reused across every fault tile; a resolved
        ``stream_budget`` the plan exceeds switches to streamed pattern
        windows.
        """
        from repro.simulation.backends.fault_kernel import (
            fault_simulate_matrix,
        )
        from repro.simulation.streaming import (
            resolve_stream_budget,
            stream_fault_plan,
        )
        budget = resolve_stream_budget(stream_budget)
        if budget is not None and plan.state_elements() > budget:
            return stream_fault_plan(self, plan, budget)
        state = plan.good_state(self)
        assert isinstance(state, ArrayApiState)
        with span("sim.fault_plan", backend=self.name,
                  faults=plan.n_faults, patterns=plan.n):
            return fault_simulate_matrix(state, plan.faults, drop=drop,
                                         xp=state.namespace,
                                         matrix=state.device_matrix)

    def fault_window_result(self, circuit: Circuit,
                            faults: "Sequence[Fault]",
                            input_words: Mapping[str, int], n: int,
                            element_budget: int | None = None
                            ) -> "FaultSimResult":
        """One streamed pattern window on the tiled kernel.

        Same contract as :meth:`NumpyBackend.fault_window_result`: the
        kernel's element budget is capped at the stream budget so a
        faulty tile never outgrows the window it streams from.
        """
        from repro.simulation.backends.fault_kernel import (
            _BATCH_ELEMENT_BUDGET,
            fault_simulate_matrix,
        )
        state = self.run(circuit, input_words, n)
        budget = _BATCH_ELEMENT_BUDGET if element_budget is None else \
            min(element_budget, _BATCH_ELEMENT_BUDGET)
        return fault_simulate_matrix(state, faults, drop=False,
                                     element_budget=budget,
                                     xp=state.namespace,
                                     matrix=state.device_matrix)
