"""Backend protocol for bit-parallel packed simulation.

A *backend* owns the hot loop of two-valued packed simulation.  Its
``run`` method evaluates a circuit's combinational part over ``n`` packed
patterns and returns a :class:`SimState` — a handle over the settled
waveform of every line that can answer the downstream questions the
power/leakage/ATPG layers ask (packed words, per-line transition counts,
per-gate leakage sums, per-sample boolean views).

The *interchange format* is backend-agnostic: a packed word is a Python
big-int whose bit ``t`` is the line's value in pattern ``t``, exactly as
produced by :func:`repro.simulation.bitsim.simulate_packed`.  Every
backend must return bit-identical words (and IEEE-identical derived
floats) for the same stimulus, which the differential property tests in
``tests/properties`` enforce.
"""

from __future__ import annotations

import abc
from collections.abc import Mapping, Sequence
from typing import TYPE_CHECKING

import numpy as np

from repro.cells.library import CellLibrary
from repro.errors import SimulationError
from repro.netlist.circuit import Circuit
from repro.netlist.gates import GateType
from repro.obs.trace import span

if TYPE_CHECKING:  # pragma: no cover - import cycle broken at runtime
    from repro.atpg.faults import Fault
    from repro.atpg.faultsim import FaultSimResult
    from repro.simulation.episode import EpisodeBatchResult, EpisodePlan
    from repro.simulation.fault_episode import FaultEpisodePlan

__all__ = ["Backend", "SimState", "require_input_word"]


def require_input_word(input_words: Mapping[str, int], line: str,
                       full: int, n: int) -> int:
    """Fetch and range-check one packed input word.

    Shared by all backends so error behaviour (and messages) cannot
    drift between them.
    """
    try:
        word = input_words[line]
    except KeyError:
        raise SimulationError(
            f"missing packed input for line {line!r}") from None
    if word < 0 or word > full:
        raise SimulationError(
            f"line {line!r}: word out of range for {n} patterns")
    return word


class SimState(abc.ABC):
    """The settled waveforms of one packed simulation.

    Concrete states keep the waveforms in whatever layout their backend
    computes fastest (big-int words, a ``uint64`` matrix, ...) and
    materialize the derived quantities on demand.
    """

    def __init__(self, circuit: Circuit, n: int):
        self.circuit = circuit
        self.n = n
        self._bool_cache: dict[str, np.ndarray] = {}

    @abc.abstractmethod
    def lines(self) -> Sequence[str]:
        """Every simulated line: combinational inputs, then gate outputs."""

    @abc.abstractmethod
    def word(self, line: str) -> int:
        """The packed big-int waveform of one line."""

    @abc.abstractmethod
    def words(self) -> dict[str, int]:
        """Packed big-int waveforms of all lines (interchange format)."""

    @abc.abstractmethod
    def transitions(self) -> dict[str, int]:
        """Per-line count of value changes between consecutive patterns."""

    @abc.abstractmethod
    def leakage_sum(self, library: CellLibrary) -> dict[str, float]:
        """Per-gate-output leakage (nA) summed over all patterns.

        Entry order is topological; every backend must accumulate each
        gate's sum over the library table's pattern order so the floats
        agree bit-for-bit across backends.
        """

    def pattern_counts(self) -> dict[str, np.ndarray]:
        """Exact per-gate pattern counts over all simulated patterns.

        Entry ``counts[line][code]`` is the number of patterns on which
        the gate driving ``line`` sees the input bit-pattern ``code``
        (pin ``j`` = bit ``j`` of the code), as an ``int64`` array of
        length ``2**arity``.  Keys are the combinational gate outputs
        in topological order.  Counts are integers, so they merge
        exactly across pattern-axis shards; pricing merged counts with
        the leakage tables reproduces :meth:`leakage_sum` bit for bit
        (see :func:`repro.leakage.estimator.leakage_from_pattern_counts`).
        """
        from repro.simulation.values import pattern_count
        counts: dict[str, np.ndarray] = {}
        for line in self.circuit.topo_order():
            gate = self.circuit.gates[line]
            arity = len(gate.inputs)
            in_words = [self.word(src) for src in gate.inputs]
            arr = np.empty(1 << arity, dtype=np.int64)
            for code in range(1 << arity):
                pattern = tuple((code >> pin) & 1 for pin in range(arity))
                arr[code] = pattern_count(in_words, pattern, self.n)
            counts[line] = arr
        return counts

    def bools(self, line: str) -> np.ndarray:
        """The line's waveform as a length-``n`` boolean array (cached)."""
        cached = self._bool_cache.get(line)
        if cached is None:
            cached = self._unpack_bools(line)
            self._bool_cache[line] = cached
        return cached

    @abc.abstractmethod
    def _unpack_bools(self, line: str) -> np.ndarray:
        """Uncached boolean unpacking of one line."""


class Backend(abc.ABC):
    """A packed-simulation engine.

    Attributes
    ----------
    name:
        Registry key (``"bigint"``, ``"numpy"``, ...).
    """

    name: str = ""

    @abc.abstractmethod
    def run(self, circuit: Circuit, input_words: Mapping[str, int],
            n: int) -> SimState:
        """Simulate ``n`` packed patterns; see :class:`SimState`."""

    @abc.abstractmethod
    def eval_gate_packed(self, gtype: GateType, words: Sequence[int],
                         n: int) -> int:
        """Evaluate one gate over ``n``-bit packed input words.

        ``words`` must have their bits above position ``n - 1`` clear;
        the result is again an ``n``-bit packed word.  Degenerate arities
        follow the big-int reference: an empty ``words`` yields the
        reduction identity (all-ones for AND/XNOR/NOR after inversion
        rules, zero for OR/XOR/NAND).
        """

    def simulate_packed(self, circuit: Circuit,
                        input_words: Mapping[str, int],
                        n: int) -> dict[str, int]:
        """Convenience: run and return interchange words for all lines."""
        return self.run(circuit, input_words, n).words()

    def simulate_episode_batch(self, plan: "EpisodePlan",
                               library: CellLibrary | None = None,
                               collect_leakage: bool = True,
                               keep_waveforms: bool = False,
                               stream_budget: int | None = None
                               ) -> "EpisodeBatchResult":
        """Evaluate a whole test set's scan replay in one pass.

        ``plan`` is a compiled :class:`~repro.simulation.episode.
        EpisodePlan` (all episodes' cycles packed back to back).  The
        default implementation runs the plan's stimulus through
        :meth:`run` as a single packed simulation — on the big-int
        engine this is the reference semantics, on the numpy engine one
        ``uint64``-matrix pass over the levelized fused-AND schedule —
        and derives transitions / leakage sums exactly as
        :func:`~repro.simulation.cyclesim.simulate_cycles` would.  Meta
        backends may shard the pattern/cycle axis instead (see
        :class:`~repro.simulation.backends.sharded.ShardedBackend`);
        every implementation must stay bit-identical.

        When a ``stream_budget`` resolves (argument > session default >
        ``$REPRO_STREAM_BUDGET``) and the plan's resident state matrix
        would exceed it, evaluation streams cycle windows instead of
        materializing the matrix — out-of-core, bounded peak memory,
        bit-identical; see :mod:`repro.simulation.streaming`.
        """
        from repro.cells.library import default_library
        from repro.simulation.episode import EpisodeBatchResult
        from repro.simulation.streaming import (
            resolve_stream_budget,
            stream_episode_batch,
        )
        budget = resolve_stream_budget(stream_budget)
        if budget is not None and plan.state_elements() > budget:
            return stream_episode_batch(self, plan, library,
                                        collect_leakage, keep_waveforms,
                                        budget)
        library = library or default_library()
        with span("sim.episode_batch", backend=self.name,
                  cycles=plan.n_cycles):
            state = self.run(plan.circuit, plan.waveforms, plan.n_cycles)
            return EpisodeBatchResult(
                n_cycles=plan.n_cycles,
                transitions=state.transitions(),
                leakage_sum_na=state.leakage_sum(library)
                if collect_leakage else {},
                offsets=plan.offsets,
                lengths=plan.lengths,
                waveforms=state.words() if keep_waveforms else None,
            )

    def fault_simulate_batch(self, circuit: Circuit,
                             faults: "Sequence[Fault]",
                             input_words: Mapping[str, int], n: int,
                             drop: bool = True,
                             cone_cache: dict[str, list[str]] | None = None
                             ) -> "FaultSimResult":
        """Simulate a stuck-at fault list against ``n`` packed patterns.

        The contract mirrors :func:`repro.atpg.faultsim.fault_simulate`:
        ``detected`` maps each detected fault to the packed word of *all*
        detecting patterns, ``remaining`` lists the undetected faults in
        input order, and both must be bit-identical across backends.

        The default implementation is the scalar big-int cone replay
        (fault-free pass on this backend, per-fault replay on interchange
        words); vectorized engines override it with fused kernels.
        """
        from repro.atpg.faultsim import scalar_fault_simulate
        return scalar_fault_simulate(self, circuit, faults, input_words,
                                     n, drop=drop, cone_cache=cone_cache)

    def fault_simulate_plan(self, plan: "FaultEpisodePlan",
                            drop: bool = True,
                            stream_budget: int | None = None
                            ) -> "FaultSimResult":
        """Replay a compiled fault x pattern plan in one fused pass.

        ``plan`` is a :class:`~repro.simulation.fault_episode.
        FaultEpisodePlan` packing a whole fault universe against a whole
        pattern set.  The contract is exactly
        :meth:`fault_simulate_batch` on the plan's components —
        detection words record all detecting patterns, ``remaining``
        follows the plan's fault order, and results are bit-identical
        across engines, tile geometries and shard counts.

        The default implementation is the scalar big-int cone replay
        over the plan's **memoized** good-machine words (one fault-free
        pass per backend, shared across calls and shards via the plan's
        state cache) with the plan's shared cone cache — the pinned
        reference semantics.  The numpy engine overrides this with the
        2-D-tiled kernel; the sharded meta-backend shards the fault
        axis (drop mode) or the pattern axis (no-drop matrices).

        When a ``stream_budget`` resolves and the plan's good-machine
        state would exceed it, evaluation streams word-aligned pattern
        windows instead of memoizing the full state (both drop modes —
        within one call dropping cannot change detection words); see
        :mod:`repro.simulation.streaming`.
        """
        from repro.atpg.faultsim import scalar_replay
        from repro.simulation.streaming import (
            resolve_stream_budget,
            stream_fault_plan,
        )
        budget = resolve_stream_budget(stream_budget)
        if budget is not None and plan.state_elements() > budget:
            return stream_fault_plan(self, plan, budget)
        with span("sim.fault_plan", backend=self.name,
                  faults=plan.n_faults, patterns=plan.n):
            return scalar_replay(plan.circuit, plan.faults,
                                 plan.good_words(self), plan.n,
                                 cone_cache=plan.cone_cache)

    def fault_window_result(self, circuit: Circuit,
                            faults: "Sequence[Fault]",
                            input_words: Mapping[str, int], n: int,
                            element_budget: int | None = None
                            ) -> "FaultSimResult":
        """One pattern window of a streamed fault plan.

        Drop-free by contract: within a single call every pattern is
        simulated at once, so the detection word of each fault records
        *all* of the window's detecting patterns and the streamed
        OR-fold reconstructs both drop modes' results exactly.
        ``element_budget`` bounds any internal tiling the engine does
        (the numpy kernel evaluates its fault tiles from the window
        view under this budget).
        """
        return self.fault_simulate_batch(circuit, faults, input_words, n,
                                         drop=False)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{type(self).__name__} {self.name!r}>"
