"""Three-valued (0/1/X) combinational simulation and implication.

Used by the transition-blocking search: controlled inputs carry assigned
constants, everything else is X.  :func:`simulate_comb3` is the full
forward pass; :func:`imply_from` is the incremental variant used inside
PODEM-style justification (re-evaluates only the fanout cone of changed
lines).
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping

import heapq

from repro.errors import SimulationError
from repro.netlist.circuit import Circuit
from repro.netlist.gates import SEQUENTIAL_TYPES, X, eval_gate3
from repro.simulation.eval2 import comb_input_lines

__all__ = ["simulate_comb3", "imply_from", "X"]


def simulate_comb3(circuit: Circuit,
                   inputs: Mapping[str, int]) -> dict[str, int]:
    """Evaluate all lines in three-valued logic.

    ``inputs`` may be partial: unmentioned combinational inputs default to
    X.  Values must be 0, 1 or :data:`X`.
    """
    values: dict[str, int] = {}
    for line in comb_input_lines(circuit):
        value = inputs.get(line, X)
        if value not in (0, 1, X):
            raise SimulationError(
                f"line {line!r}: value {value!r} is not 0/1/X")
        values[line] = value
    for line in circuit.topo_order():
        gate = circuit.gates[line]
        values[line] = eval_gate3(
            gate.gtype, [values[src] for src in gate.inputs])
    return values


def imply_from(circuit: Circuit, values: dict[str, int],
               changed: Iterable[str]) -> list[str]:
    """Incrementally re-evaluate the fanout cones of ``changed`` lines.

    ``values`` is updated in place; returns the list of lines whose value
    actually changed (including the seeds if their stored value is used
    as-is).  Gates are processed in level order so each is evaluated once.
    """
    pending: list[tuple[int, str]] = []
    queued: set[str] = set()

    def enqueue_fanout(line: str) -> None:
        for sink, _pin in circuit.fanout(line):
            if sink in queued:
                continue
            gate = circuit.gates[sink]
            if gate.gtype in SEQUENTIAL_TYPES:
                continue
            queued.add(sink)
            heapq.heappush(pending, (circuit.level_of(sink), sink))

    updated: list[str] = []
    for line in changed:
        updated.append(line)
        enqueue_fanout(line)

    while pending:
        _level, line = heapq.heappop(pending)
        queued.discard(line)
        gate = circuit.gates[line]
        new_value = eval_gate3(
            gate.gtype, [values.get(src, X) for src in gate.inputs])
        if values.get(line, X) != new_value:
            values[line] = new_value
            updated.append(line)
            enqueue_fanout(line)
    return updated
