"""Bit-packing helpers for parallel logic simulation.

The simulators pack one logic waveform (across patterns or clock cycles)
into a single arbitrary-precision Python integer: bit ``t`` of the word is
the signal's value in pattern/cycle ``t``.  CPython's big-int bitwise ops
and :meth:`int.bit_count` make this both simple and fast — a 20k-cycle
waveform is one ~2.5 kB integer and a gate evaluation is one C-level op.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

import numpy as np

__all__ = [
    "mask",
    "pack_bits",
    "unpack_bits",
    "unpack_bool_array",
    "bit_at",
    "count_transitions",
    "pattern_count",
]


def mask(n: int) -> int:
    """An ``n``-bit all-ones word."""
    if n < 0:
        raise ValueError("n must be >= 0")
    return (1 << n) - 1


def pack_bits(bits: Iterable[int]) -> int:
    """Pack an iterable of 0/1 values into a word (first value = bit 0)."""
    word = 0
    for position, bit in enumerate(bits):
        if bit not in (0, 1):
            raise ValueError(f"bit at position {position} is {bit!r}")
        if bit:
            word |= 1 << position
    return word


def unpack_bits(word: int, n: int) -> list[int]:
    """Unpack the low ``n`` bits of ``word`` into a list of 0/1 ints."""
    return [(word >> t) & 1 for t in range(n)]


def unpack_bool_array(word: int, n: int) -> np.ndarray:
    """Low ``n`` bits of ``word`` as a boolean numpy array (bit 0 first)."""
    raw = word.to_bytes((n + 7) // 8, "little")
    bits = np.unpackbits(np.frombuffer(raw, dtype=np.uint8),
                         bitorder="little")
    return bits[:n].astype(bool)


def bit_at(word: int, t: int) -> int:
    """Bit ``t`` of ``word``."""
    return (word >> t) & 1


def count_transitions(word: int, n: int) -> int:
    """Number of value changes between consecutive positions ``t``/``t+1``.

    >>> count_transitions(pack_bits([0, 1, 1, 0]), 4)
    2
    """
    if n < 2:
        return 0
    return ((word ^ (word >> 1)) & mask(n - 1)).bit_count()


def pattern_count(input_words: Sequence[int], pattern: Sequence[int],
                  n: int) -> int:
    """Count positions where the inputs jointly equal ``pattern``.

    ``input_words[i]`` is the packed waveform of input ``i``; ``pattern``
    is the tuple of 0/1 values being matched.  Used to accumulate
    per-pattern leakage over a whole scan-shift episode in O(2^k) popcounts
    per gate instead of O(cycles) table lookups.
    """
    word = mask(n)
    full = word
    for in_word, bit in zip(input_words, pattern):
        word &= in_word if bit else (in_word ^ full)
        if word == 0:
            return 0
    return word.bit_count()
