"""Shared resolution for runtime speed toggles.

The batched episode engine and the planned fault replay are both
bit-identical to their legacy reference paths, so each is guarded by a
speed-only switch with the same precedence chain: an explicit per-call
flag, then a session default (installed by the CLI), then an
environment variable, then the built-in default (**on**).  This module
holds the one resolver both share so parsing and precedence cannot
drift between them.
"""

from __future__ import annotations

import os

from repro.errors import SimulationError

__all__ = ["TRUE_VALUES", "FALSE_VALUES", "resolve_toggle"]

TRUE_VALUES = ("1", "true", "on", "yes")
FALSE_VALUES = ("0", "false", "off", "no")


def resolve_toggle(env_var: str, flag: bool | None,
                   override: bool | None, default: bool = True) -> bool:
    """Resolve flag > session override > ``$env_var`` > ``default``.

    A malformed environment value raises :class:`SimulationError`
    naming the variable (consumers surface it as a clean CLI error).
    """
    if flag is not None:
        return flag
    if override is not None:
        return override
    env = os.environ.get(env_var, "")
    if not env:
        return default
    lowered = env.strip().lower()
    if lowered in TRUE_VALUES:
        return True
    if lowered in FALSE_VALUES:
        return False
    raise SimulationError(
        f"${env_var} must be one of {TRUE_VALUES + FALSE_VALUES}, "
        f"got {env!r}")
