"""Fault x pattern batched replay: whole-test-set fault detection.

PR 4 turned whole-test-set *power* replay into one matrix
(:mod:`repro.simulation.episode`); this module does the same for fault
detection — the dominant cost of ATPG and of every Table-I run.  The
scan-power literature evaluates fault coverage over the *entire* applied
test set, which is exactly the fault x pattern detection matrix, so
instead of driving many independent
:func:`~repro.atpg.faultsim.fault_simulate` calls (each re-simulating
the good machine, re-chunking cones and re-dispatching shards) the whole
fault universe and the whole pattern set are packed into **one**
:class:`FaultEpisodePlan` and handed to
:meth:`~repro.simulation.backends.base.Backend.fault_simulate_plan`:

* ``bigint`` replays the plan with the scalar cone-replay reference on
  the plan's memoized good-machine words (the pinned semantics);
* ``numpy`` evaluates the detection matrix with **2-D tiling** — fault-
  axis chunks x pattern-axis word blocks under the fault kernel's
  element budget — reusing the warmed good-machine state and levelized
  schedule across all tiles (:mod:`~repro.simulation.backends.
  fault_kernel`);
* ``sharded`` shards **both axes**: fault-major for drop-mode runs,
  pattern-major (word-aligned cycle windows) for no-drop detection
  matrices, with an integer-exact OR-merge of detection words
  (:mod:`~repro.simulation.backends.sharded`).

A :class:`FaultSimSession` carries the plan machinery, the good-machine
state cache and the shared fanout-cone cache across the many batches of
one ATPG run (or one campaign circuit), so incremental fault dropping
never recomputes shared state.

Everything is bit-identical to the per-batch reference path: detection
words, ``remaining`` ordering, coverage statistics and compacted test
sets never depend on the engine, the tile geometry or the shard count —
the differential property tests in ``tests/properties`` pin this.  The
planned path is on by default; ``$REPRO_FAULT_PLAN`` (``0``/``1``), a
session default installed via :func:`set_default_fault_planning` (the
CLI's ``--fault-plan on|off`` flag) or a per-call flag override it.
The toggle is runtime-only and excluded from
:meth:`~repro.core.config.FlowConfig.config_hash`.
"""

from __future__ import annotations

from collections import OrderedDict
from collections.abc import Mapping, Sequence
from typing import TYPE_CHECKING

from repro.errors import SimulationError
from repro.netlist.circuit import Circuit
from repro.obs.trace import span
from repro.simulation.toggles import resolve_toggle

if TYPE_CHECKING:  # pragma: no cover - import cycle broken at runtime
    from repro.atpg.faults import Fault
    from repro.atpg.faultsim import FaultSimResult
    from repro.simulation.backends import Backend, SimState

__all__ = [
    "FaultEpisodePlan",
    "FaultSimSession",
    "compile_fault_episode_plan",
    "fault_planning_enabled",
    "set_default_fault_planning",
    "DEFAULT_FAULT_PLAN_ENV",
]

#: Environment variable toggling the planned fault-replay engine
#: (``1`` on, ``0`` off; unset = on).
DEFAULT_FAULT_PLAN_ENV = "REPRO_FAULT_PLAN"


def set_default_fault_planning(flag: bool | None) -> None:
    """Deprecated: install the session-default fault-planning switch.

    Thin shim over the unified runtime-options surface — use
    ``repro.runtime.set_session_defaults(fault_plan=flag)`` (or the
    :func:`repro.runtime.using` context manager) instead.  ``None``
    resets to the environment/built-in default.
    """
    from repro.runtime import _deprecated_setter
    _deprecated_setter("set_default_fault_planning", "fault_plan", flag)


def fault_planning_enabled(flag: bool | None = None) -> bool:
    """Resolve the fault-planning switch.

    An explicit ``flag`` wins, then the session default
    (:attr:`repro.runtime.RuntimeOptions.fault_plan`), then
    ``$REPRO_FAULT_PLAN``, defaulting to **on** (the planned path is
    bit-identical to the per-batch loop, so only speed changes).
    """
    from repro.runtime import session_defaults
    return resolve_toggle(DEFAULT_FAULT_PLAN_ENV, flag,
                          session_defaults().fault_plan)


class FaultEpisodePlan:
    """A whole fault universe x pattern set as one replay plan.

    Attributes
    ----------
    circuit:
        The circuit under test (combinational test view).
    faults:
        The fault list, in caller order (``remaining`` ordering follows
        it exactly).
    input_words:
        Packed interchange stimulus for every combinational input.
    n:
        Pattern count.
    cone_cache:
        Shared fanout-cone cache for the scalar replay path; a session
        passes its own so cones are extracted once per circuit line.

    The plan memoizes the fault-free ("good machine") simulation per
    backend, so every engine — and every tile and shard within one
    engine — reuses one settled state instead of re-simulating per
    call.  Plans are never pickled: sharded dispatch ships raw
    components (or inherits the plan copy-on-write on the fork path).
    """

    def __init__(self, circuit: Circuit, faults: "Sequence[Fault]",
                 input_words: Mapping[str, int], n: int,
                 cone_cache: dict[str, list[str]] | None = None,
                 state_cache: "dict[str, SimState] | None" = None):
        if n < 1:
            raise SimulationError("fault episode plan needs >= 1 pattern")
        self.circuit = circuit
        self.faults: "tuple[Fault, ...]" = tuple(faults)
        self.input_words = dict(input_words)
        self.n = n
        self.cone_cache = {} if cone_cache is None else cone_cache
        self._states: "dict[str, SimState]" = \
            {} if state_cache is None else state_cache
        self._good_words: dict[str, dict[str, int]] = {}

    @property
    def n_faults(self) -> int:
        return len(self.faults)

    @property
    def n_words(self) -> int:
        """``uint64`` words per packed waveform row."""
        return (self.n + 63) // 64

    def state_elements(self) -> int:
        """``uint64`` elements of the good machine's resident state.

        The budget currency of the streaming ``stream_budget``: every
        combinational input plus every gate output plus the padding
        row, times the packed word count.
        """
        from repro.simulation.streaming import state_elements
        return state_elements(len(self.input_words), self.circuit, self.n)

    def good_state(self, backend: "Backend") -> "SimState":
        """The fault-free simulation on ``backend``, memoized by name.

        The state cache may be shared with a :class:`FaultSimSession`
        so identical stimuli reuse one settled state across plans.
        """
        state = self._states.get(backend.name)
        if state is None:
            with span("plan.fault_good_state", backend=backend.name,
                      patterns=self.n):
                state = backend.run(self.circuit, self.input_words, self.n)
            self._states[backend.name] = state
        return state

    def good_words(self, backend: "Backend") -> dict[str, int]:
        """Interchange words of the good machine (memoized per backend)."""
        words = self._good_words.get(backend.name)
        if words is None:
            words = self.good_state(backend).words()
            self._good_words[backend.name] = words
        return words

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"<FaultEpisodePlan {self.circuit.name!r} "
                f"faults={self.n_faults} patterns={self.n}>")


def compile_fault_episode_plan(circuit: Circuit,
                               faults: "Sequence[Fault]",
                               input_words: Mapping[str, int], n: int,
                               cone_cache: dict[str, list[str]] | None = None
                               ) -> FaultEpisodePlan:
    """Compile one :class:`FaultEpisodePlan` (standalone convenience).

    Long-running consumers should prefer a :class:`FaultSimSession`,
    which shares cone and good-machine caches across plans.
    """
    return FaultEpisodePlan(circuit, faults, input_words, n,
                            cone_cache=cone_cache)


#: Good-machine states kept per session: distinct stimuli worth caching
#: at once (ATPG alternates between at most a few within one phase).
_SESSION_STATE_SLOTS = 4


class FaultSimSession:
    """Persistent fault-simulation context for one circuit.

    Carries the resolved engine, the shared fanout-cone cache and a
    bounded good-machine state pool across *many* fault-simulation
    calls (ATPG batches, compaction, coverage accounting), so
    incremental fault dropping never recomputes shared state.  The
    session resolves the planning toggle **once** at construction —
    one ATPG run never mixes paths.

    Parameters
    ----------
    circuit:
        The circuit every call simulates (cone/plan caches key on it).
    backend:
        Fault-simulation engine (name, instance or ``None`` — resolved
        through :func:`~repro.simulation.backends.resolve_fault_backend`).
    plan:
        Planning toggle override; ``None`` defers to the session
        default / ``$REPRO_FAULT_PLAN`` (default on).  Off routes every
        call through the legacy per-batch
        :meth:`~repro.simulation.backends.base.Backend.
        fault_simulate_batch` path — the pinned reference.
    cone_cache:
        Optional externally shared fanout-cone cache.
    stream_budget:
        Out-of-core streaming budget override (``uint64`` elements of
        one window's state matrix); ``None`` defers to the session
        default / ``$REPRO_STREAM_BUDGET``, ``0`` forces streaming off.
        Resolved once at construction, like the planning toggle.
    """

    def __init__(self, circuit: Circuit,
                 backend: "str | Backend | None" = None,
                 plan: bool | None = None,
                 cone_cache: dict[str, list[str]] | None = None,
                 stream_budget: int | None = None):
        from repro.simulation.backends import resolve_fault_backend
        from repro.simulation.streaming import resolve_stream_budget
        self.circuit = circuit
        self.engine = resolve_fault_backend(backend)
        self.cone_cache: dict[str, list[str]] = \
            {} if cone_cache is None else cone_cache
        self.plan_enabled = fault_planning_enabled(plan)
        self.stream_budget = resolve_stream_budget(stream_budget)
        self._state_pool: \
            "OrderedDict[tuple, dict[str, SimState]]" = OrderedDict()

    def _states_for(self, input_words: Mapping[str, int], n: int
                    ) -> "dict[str, SimState]":
        """The per-stimulus good-machine cache slot (bounded LRU)."""
        key = (n, tuple(sorted(input_words.items())))
        states = self._state_pool.get(key)
        if states is None:
            self._state_pool[key] = states = {}
            while len(self._state_pool) > _SESSION_STATE_SLOTS:
                self._state_pool.popitem(last=False)
        else:
            self._state_pool.move_to_end(key)
        return states

    def compile(self, faults: "Sequence[Fault]",
                input_words: Mapping[str, int], n: int
                ) -> FaultEpisodePlan:
        """Compile a plan wired to the session's shared caches."""
        words = dict(input_words)
        return FaultEpisodePlan(
            self.circuit, faults, words, n,
            cone_cache=self.cone_cache,
            state_cache=self._states_for(words, n))

    def simulate(self, faults: "Sequence[Fault]",
                 input_words: Mapping[str, int], n: int,
                 drop: bool = True) -> "FaultSimResult":
        """Simulate ``faults`` against ``n`` packed patterns.

        Same contract as :func:`repro.atpg.faultsim.fault_simulate`
        (detection words record all detecting patterns; ``remaining``
        is the undetected faults in input order), bit-identical whether
        the planned or the legacy per-batch path runs.
        """
        if not self.plan_enabled:
            return self.engine.fault_simulate_batch(
                self.circuit, faults, input_words, n, drop=drop,
                cone_cache=self.cone_cache)
        plan = self.compile(faults, input_words, n)
        # The budget was resolved once at construction; 0 pins it off so
        # a later session default cannot flip one run mid-flight.
        return self.engine.fault_simulate_plan(
            plan, drop=drop, stream_budget=self.stream_budget or 0)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"<FaultSimSession {self.circuit.name!r} "
                f"engine={self.engine.name!r} "
                f"plan={self.plan_enabled}>")
