"""Out-of-core streaming evaluation of episode and fault plans.

PR 4/5 compiled whole-test-set replays into single plans
(:class:`~repro.simulation.episode.EpisodePlan`,
:class:`~repro.simulation.fault_episode.FaultEpisodePlan`) whose state
matrices — ``(lines, cycle words)`` for power replay, the same good
machine plus fault tiles for detection — are materialized in RAM.  At
production scale (10^5–10^6 gates x long episodes) those matrices no
longer fit.  This module makes both plan evaluations *streamable*:

* the packed stimulus is sliced into contiguous cycle windows produced
  lazily from a byte map (:class:`PlanByteStore` — spilled to a
  memory-mapped temp file above a threshold, so even the stimulus never
  has to stay resident);
* each window is one ordinary packed simulation whose state matrix fits
  a configurable ``stream_budget`` (``uint64`` elements, like the
  sharded backend's ``episode_budget`` and the fault kernel's element
  budget);
* consumers fold every window's **integer-exact partial** into an
  accumulator — transition counts plus boundary edge bits, leakage
  pattern counts (priced once at the end), OR-shifted detection words —
  so the full detection/waveform matrix is never materialized and peak
  memory is bounded by the budget, not the plan.

The folds are the same integer arithmetic the sharded meta-backend's
chunk merges use, so the streamed results are **bit-identical** to the
resident path for every budget — transitions, IEEE-identical leakage
floats, detection words and ``remaining`` ordering.  The differential
property suite pins this with forced one-word/one-cycle budgets.
Fault-detection windows are safe in both drop modes because every
(fault, pattern) detection bit is computed independently within one
plan call — dropping never changes a single call's words, only which
faults a *caller* re-submits later.

Streaming engages when a budget is configured and the plan's resident
state matrix would exceed it.  Resolution order matches every other
runtime knob: per-call argument > session default
(:func:`set_default_stream_budget`, installed by the CLI's
``--stream-budget``) > ``$REPRO_STREAM_BUDGET`` > off.  The knob is
runtime-only: it never changes results, so it is excluded from
:meth:`~repro.core.config.FlowConfig.config_hash`.
"""

from __future__ import annotations

import mmap
import os
import tempfile
from collections.abc import Mapping, Sequence
from typing import TYPE_CHECKING

from repro.cells.library import CellLibrary
from repro.errors import SimulationError
from repro.netlist.circuit import Circuit
from repro.obs.trace import span
from repro.simulation.values import mask

if TYPE_CHECKING:  # pragma: no cover - import cycle broken at runtime
    import numpy as np

    from repro.atpg.faults import Fault
    from repro.atpg.faultsim import FaultSimResult
    from repro.simulation.backends import Backend
    from repro.simulation.episode import EpisodeBatchResult, EpisodePlan
    from repro.simulation.fault_episode import FaultEpisodePlan

__all__ = [
    "DEFAULT_STREAM_BUDGET_ENV",
    "EpisodeAccumulator",
    "PlanByteStore",
    "episode_stream_windows",
    "episode_window_ingredients",
    "fault_stream_windows",
    "resolve_stream_budget",
    "set_default_stream_budget",
    "shard_bounds",
    "state_elements",
    "stream_episode_batch",
    "stream_episode_ingredients",
    "stream_fault_plan",
    "stream_fault_words",
    "window_word",
]

#: Environment variable supplying the default stream budget (``uint64``
#: elements of one window's state matrix; ``0``/unset = streaming off).
DEFAULT_STREAM_BUDGET_ENV = "REPRO_STREAM_BUDGET"

#: Stimulus byte maps above this size spill to a memory-mapped temp
#: file instead of staying resident (see :class:`PlanByteStore`).
_SPILL_THRESHOLD_BYTES = 256 * 1024 * 1024

def set_default_stream_budget(budget: int | None) -> None:
    """Deprecated: install the session-default stream budget.

    Thin shim over the unified runtime-options surface — use
    ``repro.runtime.set_session_defaults(stream_budget=budget)`` (or
    the :func:`repro.runtime.using` context manager) instead.  ``None``
    resets to the environment/built-in default; ``0`` forces streaming
    off for the session.
    """
    if budget is not None and budget < 0:
        raise SimulationError("stream budget must be >= 0")
    from repro.runtime import _deprecated_setter
    _deprecated_setter("set_default_stream_budget", "stream_budget",
                       budget)


def resolve_stream_budget(budget: int | None = None) -> int | None:
    """Resolve the stream budget: argument > session > env > off.

    Returns the ``uint64``-element budget of one streamed window's
    state matrix, or ``None`` when streaming is disabled.  ``0`` (from
    any source) means explicitly off.
    """
    if budget is None:
        from repro.runtime import session_defaults
        budget = session_defaults().stream_budget
    if budget is None:
        env = os.environ.get(DEFAULT_STREAM_BUDGET_ENV, "")
        if env:
            try:
                budget = int(env)
            except ValueError:
                raise SimulationError(
                    f"${DEFAULT_STREAM_BUDGET_ENV} must be an integer, "
                    f"got {env!r}") from None
    if budget is None or budget == 0:
        return None
    if budget < 0:
        raise SimulationError(f"invalid stream budget {budget} "
                              f"(check ${DEFAULT_STREAM_BUDGET_ENV})")
    return budget


def shard_bounds(n_items: int, n_shards: int) -> list[tuple[int, int]]:
    """Contiguous, near-even ``[start, stop)`` slices of ``n_items``.

    The first ``n_items % n_shards`` shards get one extra item; empty
    shards are never produced.  Pure function so tests can pin the
    partition workers and stream windows see.  (Canonical home of the
    helper the sharded backend re-exports.)
    """
    n_shards = max(1, min(n_shards, n_items))
    base, extra = divmod(n_items, n_shards)
    bounds: list[tuple[int, int]] = []
    start = 0
    for i in range(n_shards):
        stop = start + base + (1 if i < extra else 0)
        bounds.append((start, stop))
        start = stop
    return bounds


def window_word(raw: "bytes | memoryview | mmap.mmap", start: int,
                stop: int) -> int:
    """Cycles ``[start, stop)`` of a little-endian packed byte string.

    O(window) regardless of where the window sits, unlike shifting the
    whole packed big-int (O(total cycles) per chunk — which would make
    slicing k chunks cost k full-plan passes).  Accepts any bytes-like
    source, including a memory-mapped spill file.
    """
    low = start // 8
    high = (stop + 7) // 8
    return (int.from_bytes(bytes(raw[low:high]), "little")
            >> (start - low * 8)) & mask(stop - start)


def plan_byte_map(waveforms: Mapping[str, int],
                  n_cycles: int) -> dict[str, bytes]:
    """Each line's packed word as bytes — one O(plan) pass, after which
    every window slices in O(window)."""
    n_bytes = (n_cycles + 7) // 8
    return {line: word.to_bytes(n_bytes, "little")
            for line, word in waveforms.items()}


class PlanByteStore:
    """Packed stimulus bytes with O(window) slicing, spilled out of core
    when large.

    Small stimuli keep their byte map resident (exactly
    :func:`plan_byte_map`); stimuli above ``spill_bytes`` are written
    once to an anonymous temp file and windows are sliced from a
    ``mmap`` — the OS pages stimulus in and out on demand, so the
    working set during a streamed evaluation is one window, not the
    plan.
    """

    def __init__(self, waveforms: Mapping[str, int], n_cycles: int,
                 spill_bytes: int = _SPILL_THRESHOLD_BYTES):
        self.n_cycles = n_cycles
        self._n_bytes = n_bytes = (n_cycles + 7) // 8
        total = n_bytes * len(waveforms)
        self._map: mmap.mmap | None = None
        self._offsets: dict[str, int] = {}
        if total <= spill_bytes or total == 0:
            self._raw: dict[str, bytes] | None = \
                plan_byte_map(waveforms, n_cycles)
        else:
            self._raw = None
            with tempfile.TemporaryFile() as handle:
                for i, (line, word) in enumerate(waveforms.items()):
                    handle.write(word.to_bytes(n_bytes, "little"))
                    self._offsets[line] = i * n_bytes
                handle.flush()
                # mmap keeps its own reference to the file; the unnamed
                # temp file is reclaimed when the map is collected.
                self._map = mmap.mmap(handle.fileno(), total)

    @classmethod
    def from_bytes(cls, byte_map: Mapping[str, bytes],
                   n_cycles: int) -> "PlanByteStore":
        """Wrap an existing byte map (e.g. one inherited copy-on-write
        by a forked shard worker) without re-packing or spilling."""
        store = cls.__new__(cls)
        store.n_cycles = n_cycles
        store._n_bytes = (n_cycles + 7) // 8
        store._raw = dict(byte_map)
        store._map = None
        store._offsets = {}
        return store

    @property
    def spilled(self) -> bool:
        """Whether the stimulus lives in a memory-mapped spill file."""
        return self._map is not None

    def window(self, start: int, stop: int) -> dict[str, int]:
        """Packed stimulus of cycles ``[start, stop)`` for every line."""
        if self._raw is not None:
            return {line: window_word(raw, start, stop)
                    for line, raw in self._raw.items()}
        assert self._map is not None
        low, high = start // 8, (stop + 7) // 8
        shift, window_mask = start - low * 8, mask(stop - start)
        return {
            line: (int.from_bytes(self._map[offset + low:offset + high],
                                  "little") >> shift) & window_mask
            for line, offset in self._offsets.items()
        }


def state_elements(n_stimulus_lines: int, circuit: Circuit,
                   n_patterns: int) -> int:
    """``uint64`` elements of the resident state matrix of one packed
    simulation: every stimulus line plus every gate output plus the
    constant-ones padding row, times the packed word count."""
    n_lines = n_stimulus_lines + len(circuit.topo_order()) + 1
    return n_lines * ((n_patterns + 63) // 64)


def episode_stream_windows(plan: "EpisodePlan",
                           budget: int) -> list[tuple[int, int]]:
    """Contiguous cycle windows of ``plan`` under ``budget``.

    One window when the whole plan fits; otherwise near-even cycle
    ranges, each of whose state matrices fits the element budget.
    """
    needed = -(plan.state_elements() // -budget)
    if needed <= 1:
        return [(0, plan.n_cycles)]
    return shard_bounds(plan.n_cycles, min(needed, plan.n_cycles))


def fault_stream_windows(plan_or_n: "FaultEpisodePlan | int",
                         budget: int, *,
                         circuit: Circuit | None = None,
                         n_stimulus_lines: int | None = None
                         ) -> list[tuple[int, int]]:
    """Word-aligned pattern windows of a fault plan under ``budget``.

    Windows are contiguous ``uint64``-word ranges of the pattern axis
    (the last window absorbs the tail bits), exactly like the sharded
    backend's pattern-axis shards, so each window's detection words are
    column slices of the full matrix and OR back bit-identically.
    """
    if isinstance(plan_or_n, int):
        n = plan_or_n
        assert circuit is not None and n_stimulus_lines is not None
        elements = state_elements(n_stimulus_lines, circuit, n)
    else:
        n = plan_or_n.n
        elements = plan_or_n.state_elements()
    n_words = (n + 63) // 64
    needed = -(elements // -budget)
    if needed <= 1:
        return [(0, n)]
    word_bounds = shard_bounds(n_words, min(needed, n_words))
    return [(w0 * 64, min(n, w1 * 64)) for w0, w1 in word_bounds]


def episode_window_ingredients(backend: "Backend", circuit: Circuit,
                               words: Mapping[str, int], n: int,
                               collect_leakage: bool, keep_waveforms: bool
                               ) -> tuple[dict[str, int],
                                          dict[str, tuple[int, int]],
                                          "dict[str, np.ndarray] | None",
                                          dict[str, int] | None]:
    """Simulate one cycle window and distil the merge ingredients.

    Returns ``(transitions, edge bits, pattern counts, words)`` — the
    integer-exact ingredients an :class:`EpisodeAccumulator` folds:
    per-line transition counts within the window, each line's (first,
    last) cycle bit for the boundary transitions between neighbouring
    windows, per-gate leakage pattern counts (``None`` unless leakage
    was requested) and the window's packed words (``None`` unless
    waveforms were kept).  Same distillation as the sharded backend's
    chunk workers, driven by a live backend instance.
    """
    state = backend.run(circuit, words, n)
    edges: dict[str, tuple[int, int]] = {}
    for line in state.lines():
        word = state.word(line)
        edges[line] = (word & 1, (word >> (n - 1)) & 1)
    return (state.transitions(), edges,
            state.pattern_counts() if collect_leakage else None,
            state.words() if keep_waveforms else None)


class EpisodeAccumulator:
    """Integer-exact left fold of episode window partials.

    The same merge arithmetic as
    :meth:`~repro.simulation.backends.sharded.ShardedBackend.
    _merge_episode`, applied incrementally so only one window's partial
    is ever held alongside the running totals: transition counts add,
    with one extra transition per boundary whose adjacent edge bits
    differ; pattern counts add (pricing happens once, at the end);
    kept waveforms OR in place, shifted to their window offset.
    Bit-identical to the resident pass for every window partition.
    """

    def __init__(self) -> None:
        self.transitions: dict[str, int] | None = None
        self.pattern_counts: "dict[str, np.ndarray] | None" = None
        self.waveforms: dict[str, int] | None = None
        self._first_edges: dict[str, tuple[int, int]] | None = None
        self._last_edges: dict[str, tuple[int, int]] | None = None

    def fold(self, start: int,
             ingredients: tuple[dict[str, int],
                                dict[str, tuple[int, int]],
                                "dict[str, np.ndarray] | None",
                                dict[str, int] | None]) -> None:
        """Fold one window's ingredients; ``start`` is its first cycle
        relative to the accumulator's origin (first fold must be 0)."""
        transitions, edges, counts, words = ingredients
        if self.transitions is None:
            assert start == 0, "first window must start the plan"
            self.transitions = dict(transitions)
            self._first_edges = edges
            if counts is not None:
                self.pattern_counts = {line: arr.copy()
                                       for line, arr in counts.items()}
            if words is not None:
                self.waveforms = dict(words)
        else:
            assert self._last_edges is not None
            last = self._last_edges
            totals = self.transitions
            for line, count in transitions.items():
                totals[line] += count
                if last[line][1] != edges[line][0]:
                    totals[line] += 1
            if counts is not None:
                assert self.pattern_counts is not None
                merged = self.pattern_counts
                for line, arr in counts.items():
                    merged[line] += arr
            if words is not None:
                assert self.waveforms is not None
                waveforms = self.waveforms
                for line, word in words.items():
                    waveforms[line] |= word << start
        self._last_edges = edges

    def ingredients(self) -> tuple[dict[str, int],
                                   dict[str, tuple[int, int]],
                                   "dict[str, np.ndarray] | None",
                                   dict[str, int] | None]:
        """The folded totals in window-ingredient shape.

        Lets a sharded chunk worker stream sub-windows internally and
        still hand its parent the exact ingredients an unstreamed chunk
        would have produced.
        """
        assert self.transitions is not None
        assert self._first_edges is not None
        assert self._last_edges is not None
        first, last = self._first_edges, self._last_edges
        edges = {line: (first[line][0], last[line][1]) for line in first}
        return (self.transitions, edges, self.pattern_counts,
                self.waveforms)

    def finish(self, plan: "EpisodePlan", library: CellLibrary,
               collect_leakage: bool) -> "EpisodeBatchResult":
        """Price the folded counts and assemble the batch result."""
        from repro.leakage.estimator import leakage_from_pattern_counts
        from repro.simulation.episode import EpisodeBatchResult
        assert self.transitions is not None
        leakage_sum: dict[str, float] = {}
        if collect_leakage:
            assert self.pattern_counts is not None
            leakage_sum = leakage_from_pattern_counts(
                plan.circuit, self.pattern_counts, library)
        return EpisodeBatchResult(
            n_cycles=plan.n_cycles,
            transitions=self.transitions,
            leakage_sum_na=leakage_sum,
            offsets=plan.offsets,
            lengths=plan.lengths,
            waveforms=self.waveforms,
        )


def stream_episode_ingredients(backend: "Backend", circuit: Circuit,
                               store: PlanByteStore, n_cycles: int,
                               collect_leakage: bool,
                               keep_waveforms: bool,
                               bounds: Sequence[tuple[int, int]]
                               ) -> tuple[dict[str, int],
                                          dict[str, tuple[int, int]],
                                          "dict[str, np.ndarray] | None",
                                          dict[str, int] | None]:
    """Fold a cycle range's sub-windows into one ingredient tuple.

    Used by sharded chunk workers: the chunk's own stimulus is further
    windowed under the stream budget, so a worker's peak memory is one
    window even when its chunk is larger.
    """
    acc = EpisodeAccumulator()
    origin = bounds[0][0]
    for start, stop in bounds:
        words = store.window(start, stop)
        acc.fold(start - origin,
                 episode_window_ingredients(backend, circuit, words,
                                            stop - start, collect_leakage,
                                            keep_waveforms))
    return acc.ingredients()


def stream_episode_batch(backend: "Backend", plan: "EpisodePlan",
                         library: CellLibrary | None,
                         collect_leakage: bool, keep_waveforms: bool,
                         budget: int) -> "EpisodeBatchResult":
    """Streamed evaluation of an episode plan under ``budget``.

    Slices the plan's stimulus into cycle windows whose state matrices
    fit the budget, simulates each window as one plain packed pass on
    ``backend`` and folds the integer-exact partials — the resident
    matrix is never materialized.  Bit-identical to
    :meth:`~repro.simulation.backends.base.Backend.
    simulate_episode_batch` without a budget.
    """
    from repro.cells.library import default_library
    library = library or default_library()
    store = PlanByteStore(plan.waveforms, plan.n_cycles)
    acc = EpisodeAccumulator()
    bounds = episode_stream_windows(plan, budget)
    with span("stream.episode", backend=backend.name,
              windows=len(bounds), cycles=plan.n_cycles):
        for start, stop in bounds:
            words = store.window(start, stop)
            with span("stream.window", start=start, stop=stop):
                acc.fold(start,
                         episode_window_ingredients(
                             backend, plan.circuit, words, stop - start,
                             collect_leakage, keep_waveforms))
    return acc.finish(plan, library, collect_leakage)


def stream_fault_words(backend: "Backend", circuit: Circuit,
                       faults: "Sequence[Fault]", store: PlanByteStore,
                       n: int, budget: int) -> "FaultSimResult":
    """Streamed fault detection over word-aligned pattern windows.

    Each window is one drop-free batched fault simulation on
    ``backend`` (within a single call dropping cannot change detection
    words, so drop-free windows reconstruct both drop modes' results);
    window words are OR-shifted into running big-int detection words,
    so the full detection matrix never exists and the fault-free state
    is only ever as wide as one window.  ``detected``/``remaining``
    are rebuilt in fault input order — identical to the resident pass.
    """
    from repro.atpg.faultsim import FaultSimResult
    n_stimulus = len(store.window(0, 1))
    bounds = fault_stream_windows(n, budget, circuit=circuit,
                                  n_stimulus_lines=n_stimulus)
    merged: dict[Fault, int] = {}
    with span("stream.fault", backend=backend.name,
              windows=len(bounds), patterns=n):
        for start, stop in bounds:
            words = store.window(start, stop)
            with span("stream.window", start=start, stop=stop):
                part = backend.fault_window_result(circuit, faults, words,
                                                   stop - start,
                                                   element_budget=budget)
            for fault, word in part.detected.items():
                merged[fault] = merged.get(fault, 0) | (word << start)
    detected: dict[Fault, int] = {}
    remaining: list[Fault] = []
    for fault in faults:
        word = merged.get(fault, 0)
        if word:
            detected[fault] = word
        else:
            remaining.append(fault)
    return FaultSimResult(detected=detected, remaining=remaining)


def stream_fault_plan(backend: "Backend", plan: "FaultEpisodePlan",
                      budget: int) -> "FaultSimResult":
    """Streamed evaluation of a fault x pattern plan under ``budget``.

    The plan's memoized good state is deliberately bypassed — it *is*
    the resident matrix streaming avoids; each pattern window
    re-simulates the fault-free machine over its own cycles only.
    """
    store = PlanByteStore(plan.input_words, plan.n)
    return stream_fault_words(backend, plan.circuit, plan.faults, store,
                              plan.n, budget)
