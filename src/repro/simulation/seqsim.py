"""Clocked sequential simulation (normal-mode operation).

Everything else in the library views the circuit through its scan test
view; this module runs the *functional* machine: flops update on clock
edges, inputs change between edges.  Used to validate that scan
structures leave normal operation untouched (one capture cycle of the
scan view must equal one clock of this simulator) and as a user-facing
utility for driving custom designs.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping, Sequence

from repro.errors import SimulationError
from repro.netlist.circuit import Circuit
from repro.simulation.eval2 import simulate_comb

__all__ = ["SequentialSimulator"]


class SequentialSimulator:
    """Cycle-accurate two-valued simulator of a sequential circuit.

    State is the flop contents (Q values); :meth:`step` applies primary
    inputs, settles the combinational logic, reports outputs, and clocks
    the flops.
    """

    def __init__(self, circuit: Circuit,
                 initial_state: Mapping[str, int] | None = None):
        if not circuit.dff_gates:
            raise SimulationError(
                f"{circuit.name}: no flops; use simulate_comb directly")
        self._circuit = circuit
        self._state: dict[str, int] = {
            q: 0 for q in circuit.dff_outputs}
        if initial_state:
            unknown = set(initial_state) - set(self._state)
            if unknown:
                raise SimulationError(
                    f"not flop outputs: {sorted(unknown)}")
            for q, value in initial_state.items():
                if value not in (0, 1):
                    raise SimulationError(
                        f"state bit {q!r} must be 0/1")
                self._state[q] = value

    @property
    def state(self) -> dict[str, int]:
        """Current flop contents (copy; chain order not implied)."""
        return dict(self._state)

    def settle(self, pi_values: Mapping[str, int]) -> dict[str, int]:
        """Combinational values under ``pi_values`` without clocking."""
        assignment = dict(pi_values)
        assignment.update(self._state)
        return simulate_comb(self._circuit, assignment)

    def _apply_edge(self, values: Mapping[str, int]) -> None:
        for gate in self._circuit.dff_gates:
            self._state[gate.output] = values[gate.inputs[0]]

    def step(self, pi_values: Mapping[str, int]) -> dict[str, int]:
        """One clock: settle, capture outputs, update the flops.

        Returns the primary output values seen *before* the edge (the
        conventional observation point).
        """
        values = self.settle(pi_values)
        outputs = {po: values[po] for po in self._circuit.outputs}
        self._apply_edge(values)
        return outputs

    def run(self, stimulus: Iterable[Mapping[str, int]]
            ) -> list[dict[str, int]]:
        """Apply a sequence of input maps; returns per-cycle PO values."""
        return [self.step(pi_values) for pi_values in stimulus]

    def trace(self, stimulus: Sequence[Mapping[str, int]],
              lines: Sequence[str]) -> dict[str, list[int]]:
        """Per-cycle settled values of selected lines over a stimulus."""
        waves: dict[str, list[int]] = {line: [] for line in lines}
        for pi_values in stimulus:
            values = self.settle(pi_values)
            for line in lines:
                if line not in values:
                    raise SimulationError(f"unknown line {line!r}")
                waves[line].append(values[line])
            self._apply_edge(values)
        return waves
