"""Configuration for the proposed flow and its baselines."""

from __future__ import annotations

import dataclasses
from typing import ClassVar

from repro.atpg.generate import AtpgConfig
from repro.cells.library import CellLibrary, default_library
from repro.errors import ConfigError

__all__ = ["FlowConfig"]


@dataclasses.dataclass(frozen=True)
class FlowConfig:
    """All knobs of the proposed method (defaults follow the paper).

    Attributes
    ----------
    seed:
        Master seed; every stochastic sub-step derives its own stream.
    observability_samples:
        Monte-Carlo sample count for leakage observability.
    ivc_trials:
        Random vectors tried when filling don't-care controlled inputs
        (ref [14]: "far less than the total possible vectors").
    ivc_noise_samples:
        Transition-source samples averaged per IVC trial (the non-muxed
        pseudo-inputs keep toggling; candidate completions are scored by
        their mean leakage over this many source states).
    max_backtracks:
        Backtrack budget per justification call.
    reorder_inputs:
        Apply the commutative-gate input reordering step.
    use_observability_directive:
        Direct backtrace/candidate choices by leakage observability
        (turning this off is ablation A1; decisions fall back to a
        deterministic structural order).
    mux_delay_margin_ps:
        Extra slack demanded before accepting a MUX (0 = paper's "critical
        path delay unchanged").
    include_capture_cycles:
        Include capture cycles in the power episode.
    atpg:
        Test generation configuration (seed is derived from ``seed`` when
        left at the sentinel -1).
    backend:
        Simulation backend name used by the flow's packed simulations
        (``None`` = session default).  Numerically irrelevant — every
        backend is bit-identical — so results never depend on it.
    fault_backend:
        Backend name for the flow's fault simulations specifically
        (``None`` = same as ``backend``).  Like ``backend`` it only
        affects speed; ``"sharded"`` fans the collapsed fault list out
        over worker processes.
    shards:
        Worker-process count for the ``sharded`` fault backend; setting
        it implies ``fault_backend="sharded"`` when that is unset.
    episode_batch:
        Batched episode engine for the flow's scan-power replays:
        ``True``/``False`` force it on/off, ``None`` defers to
        ``$REPRO_EPISODE_BATCH`` (default on).  Bit-identical either
        way; only speed changes.
    fault_plan:
        Planned fault x pattern replay for the flow's fault
        simulations (ATPG batches, compaction matrices, coverage
        accounting): ``True``/``False`` force it on/off, ``None``
        defers to ``$REPRO_FAULT_PLAN`` (default on).  The legacy
        per-batch loop is the pinned reference; results are
        bit-identical either way.
    stream_budget:
        Out-of-core streaming budget for the flow's plan evaluations
        (``uint64`` elements of one window's state matrix): a positive
        value streams any plan that exceeds it, ``0`` forces streaming
        off, ``None`` defers to ``$REPRO_STREAM_BUDGET`` (default
        off).  Streamed and resident paths are bit-identical; only
        peak memory changes.
    trace:
        Span-trace output directory for the flow's instrumented
        phases (``None`` = session default / ``$REPRO_TRACE``, ``""``
        pins off).  Purely observational — spans record timings, never
        results — so like the other runtime fields it is excluded from
        :meth:`config_hash`.
    array_namespace:
        Array namespace (importable module name) for the ``array_api``
        backend's shared kernels (``None`` = session default /
        ``$REPRO_ARRAY_NAMESPACE``, built-in ``numpy``).  The flow
        installs it as a scoped session default for the duration of a
        run; bit-identical by contract, so it is excluded from
        :meth:`config_hash`.
    """

    #: Fields that only affect execution speed, never results (every
    #: backend is bit-identical by contract); excluded from
    #: :meth:`config_hash` so cache keys are engine-independent.
    RUNTIME_FIELDS: ClassVar[tuple[str, ...]] = (
        "backend", "fault_backend", "shards", "episode_batch",
        "fault_plan", "stream_budget", "trace", "array_namespace")

    seed: int = 0
    observability_samples: int = 512
    ivc_trials: int = 64
    ivc_noise_samples: int = 8
    max_backtracks: int = 50
    reorder_inputs: bool = True
    use_observability_directive: bool = True
    mux_delay_margin_ps: float = 0.0
    include_capture_cycles: bool = True
    atpg: AtpgConfig | None = None
    backend: str | None = None
    fault_backend: str | None = None
    shards: int | None = None
    episode_batch: bool | None = None
    fault_plan: bool | None = None
    stream_budget: int | None = None
    trace: str | None = None
    array_namespace: str | None = None

    def __post_init__(self) -> None:
        from repro.simulation.backends import available_backends
        for which, name in (("simulation", self.backend),
                            ("fault simulation", self.fault_backend)):
            if name is not None and name not in available_backends():
                raise ConfigError(
                    f"unknown {which} backend {name!r}; "
                    f"available: {', '.join(available_backends())}")
        if self.shards is not None:
            if self.shards < 1:
                raise ConfigError("shards must be >= 1")
            if self.fault_backend not in (None, "sharded"):
                raise ConfigError(
                    "shards only applies to the 'sharded' fault backend, "
                    f"not {self.fault_backend!r}")
        if self.stream_budget is not None and self.stream_budget < 0:
            raise ConfigError("stream_budget must be >= 0")
        if self.array_namespace is not None:
            if not self.array_namespace:
                raise ConfigError("array_namespace must be a non-empty "
                                  "module name")
            import importlib.util
            try:
                spec = importlib.util.find_spec(self.array_namespace)
            except (ImportError, ValueError):
                spec = None
            if spec is None:
                raise ConfigError(
                    f"array namespace {self.array_namespace!r} is not "
                    f"importable")
        if self.observability_samples < 2:
            raise ConfigError("observability_samples must be >= 2")
        if self.ivc_trials < 1:
            raise ConfigError("ivc_trials must be >= 1")
        if self.ivc_noise_samples < 1:
            raise ConfigError("ivc_noise_samples must be >= 1")
        if self.max_backtracks < 0:
            raise ConfigError("max_backtracks must be >= 0")
        if self.mux_delay_margin_ps < 0:
            raise ConfigError("mux_delay_margin_ps must be >= 0")

    def config_hash(self) -> str:
        """Canonical content hash of the result-relevant configuration.

        Properties: stable across processes and dict orderings (keys
        are sorted before hashing); excludes the runtime-only engine
        fields (:attr:`RUNTIME_FIELDS` — backends are bit-identical,
        so results never depend on them); resolves the ATPG sub-config
        through :meth:`atpg_config` so a config with an explicitly
        spelled-out default ATPG hashes equal to one relying on the
        implicit default.  The campaign result cache keys artefacts on
        this hash.
        """
        from repro.utils.hashing import stable_digest
        payload = dataclasses.asdict(self)
        for field in self.RUNTIME_FIELDS:
            payload.pop(field)
        payload["atpg"] = dataclasses.asdict(self.atpg_config())
        return stable_digest(payload)

    def atpg_config(self) -> AtpgConfig:
        """The ATPG configuration, seeded from the master seed by default."""
        if self.atpg is not None:
            return self.atpg
        return AtpgConfig(seed=self.seed)

    def fault_simulation_backend(self):
        """The backend spec the flow's fault simulations should use.

        Precedence mirrors :mod:`repro.simulation.backends`: an explicit
        ``fault_backend``/``shards`` wins, else ``$REPRO_FAULT_BACKEND``,
        else the plain ``backend`` (``None`` = session default).  Returns
        a fresh :class:`ShardedBackend` instance when a shard count is
        pinned, so concurrent flows with different configs never fight
        over the registry singleton.
        """
        name = self.fault_backend
        if name is None and self.shards is not None:
            name = "sharded"
        if name == "sharded" and self.shards is not None:
            from repro.simulation.backends import ShardedBackend
            return ShardedBackend(shards=self.shards)
        if name is None:
            import os

            from repro.simulation.backends import DEFAULT_FAULT_BACKEND_ENV
            name = os.environ.get(DEFAULT_FAULT_BACKEND_ENV, "") or None
        if name is None:
            return self.backend
        return name

    def library(self) -> CellLibrary:
        """The cell library used throughout the flow."""
        return default_library()
