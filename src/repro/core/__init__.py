"""The paper's contribution: AddMUX, transition blocking, full flow."""

from repro.core.addmux import AddMuxResult, add_mux
from repro.core.config import FlowConfig
from repro.core.find_pattern import (
    PatternResult,
    find_controlled_input_pattern,
)
from repro.core.flow import METHODS, FlowResult, ProposedFlow
from repro.core.input_control import (
    InputControlResult,
    input_control_pattern,
)
from repro.core.justify import Justifier, JustifyResult
from repro.core.tns import TransitionAnalysis, update_tns_tgs

__all__ = [
    "FlowConfig",
    "ProposedFlow",
    "FlowResult",
    "METHODS",
    "AddMuxResult",
    "add_mux",
    "PatternResult",
    "find_controlled_input_pattern",
    "InputControlResult",
    "input_control_pattern",
    "Justifier",
    "JustifyResult",
    "TransitionAnalysis",
    "update_tns_tgs",
]
