"""The complete proposed flow (paper Section 4) and its evaluation.

``ProposedFlow.run`` executes, in order:

1. technology mapping to NAND/NOR/INV (paper Section 5);
2. full-scan chain construction (no reordering, as in the paper);
3. stuck-at test generation (ATOM substitute);
4. ``AddMUX`` — MUXes on every pseudo-input off the critical path(s);
5. Monte-Carlo leakage observability for all lines (directive);
6. ``FindControlledInputPattern`` — transition blocking over the
   controlled inputs (PIs + muxed pseudo-inputs);
7. random-search minimum-leakage fill of the don't-care controlled
   inputs (input vector control, refs [14]/[15]);
8. commutative-gate input reordering for the quiescent scan-mode state;
9. power evaluation of the three structures on the *same* test set:
   traditional scan, input control [8], and the proposed structure —
   the paper's Table I row for the circuit.
"""

from __future__ import annotations

import dataclasses

from repro.atpg.generate import TestSet, generate_tests
from repro.core.addmux import AddMuxResult, add_mux
from repro.core.config import FlowConfig
from repro.core.find_pattern import (
    PatternResult,
    find_controlled_input_pattern,
)
from repro.core.input_control import (
    InputControlResult,
    input_control_pattern,
)
from repro.leakage.ivc import IvcResult, random_fill_search
from repro.leakage.observability import monte_carlo_observability
from repro.leakage.reorder import ReorderResult, reorder_for_leakage
from repro.netlist.circuit import Circuit
from repro.obs.trace import traced
from repro.power.scanpower import (
    ScanPowerReport,
    ShiftPolicy,
    evaluate_scan_power,
)
from repro.scan.chain import ScanChain
from repro.scan.mux import MuxPlan
from repro.scan.testview import ScanDesign
from repro.simulation.eval3 import simulate_comb3
from repro.techmap.mapper import is_mapped, technology_map
from repro.utils.rng import derive_seed

__all__ = ["FlowResult", "ProposedFlow"]

METHODS = ("traditional", "input_control", "proposed")


@dataclasses.dataclass
class FlowResult:
    """Everything the flow produced for one circuit."""

    circuit: Circuit                       # tech-mapped netlist
    design: ScanDesign
    test_set: TestSet
    addmux: AddMuxResult
    pattern: PatternResult
    ivc: IvcResult
    input_control: InputControlResult
    reorder: ReorderResult | None
    mux_plan: MuxPlan
    control_values: dict[str, int]
    policies: dict[str, ShiftPolicy]
    reports: dict[str, ScanPowerReport]

    def improvements(self) -> dict[str, tuple[float, float]]:
        """(dynamic %, static %) of the proposed method vs each baseline."""
        proposed = self.reports["proposed"]
        return {
            "vs_traditional":
                proposed.improvement_vs(self.reports["traditional"]),
            "vs_input_control":
                proposed.improvement_vs(self.reports["input_control"]),
        }

    def summary(self) -> str:
        """Multi-line human-readable account of the run."""
        imp = self.improvements()
        trad = self.reports["traditional"]
        ic = self.reports["input_control"]
        prop = self.reports["proposed"]
        lines = [
            f"{self.circuit.name}: "
            f"{len(self.design.pseudo_inputs)} scan cells, "
            f"{len(self.addmux.muxable)} muxed "
            f"({self.addmux.coverage:.0%} coverage), "
            f"{len(self.pattern.blocked_gates)} gates blocked, "
            f"{self.test_set.summary()}",
            f"  dynamic uW/Hz: traditional {trad.dynamic_uw_per_hz:.3e}  "
            f"input-control {ic.dynamic_uw_per_hz:.3e}  "
            f"proposed {prop.dynamic_uw_per_hz:.3e}",
            f"  static uW:     traditional {trad.static_uw:.2f}  "
            f"input-control {ic.static_uw:.2f}  "
            f"proposed {prop.static_uw:.2f}",
            f"  improvement vs traditional: "
            f"dynamic {imp['vs_traditional'][0]:.2f}%, "
            f"static {imp['vs_traditional'][1]:.2f}%",
            f"  improvement vs input control: "
            f"dynamic {imp['vs_input_control'][0]:.2f}%, "
            f"static {imp['vs_input_control'][1]:.2f}%",
        ]
        return "\n".join(lines)


class ProposedFlow:
    """Runs the paper's method end to end on one circuit."""

    def __init__(self, config: FlowConfig | None = None):
        self.config = config or FlowConfig()

    @traced("flow.run")
    def run(self, circuit: Circuit) -> FlowResult:
        """Execute the full flow; see the module docstring for the steps."""
        if self.config.array_namespace is not None:
            # Scoped session default: every packed dispatch of the run —
            # including plan/stream helpers that re-resolve the engine —
            # sees the configured array namespace.
            from repro.runtime import using
            with using(array_namespace=self.config.array_namespace):
                return self._run_steps(circuit)
        return self._run_steps(circuit)

    def _run_steps(self, circuit: Circuit) -> FlowResult:
        config = self.config
        library = config.library()

        mapped = circuit if is_mapped(circuit) else technology_map(circuit)
        design = ScanDesign.full_scan(mapped)
        test_set = generate_tests(
            design, config.atpg_config(), backend=config.backend,
            fault_backend=config.fault_simulation_backend(),
            fault_plan=config.fault_plan,
            stream_budget=config.stream_budget)

        addmux = add_mux(mapped, library,
                         margin_ps=config.mux_delay_margin_ps)

        observability = None
        if config.use_observability_directive:
            observability = monte_carlo_observability(
                mapped, config.observability_samples,
                seed=derive_seed(config.seed, f"obs:{mapped.name}"),
                library=library, backend=config.backend)

        controlled = set(mapped.inputs) | set(addmux.muxable)
        sources = set(mapped.dff_outputs) - set(addmux.muxable)
        pattern = find_controlled_input_pattern(
            mapped, controlled, sources,
            observability=observability, library=library,
            max_backtracks=config.max_backtracks)

        free = sorted(controlled - set(pattern.assignment))
        ivc = random_fill_search(
            mapped, fixed=pattern.assignment, free_lines=free,
            n_trials=config.ivc_trials,
            seed=derive_seed(config.seed, f"ivc:{mapped.name}"),
            library=library,
            noise_lines=sorted(sources), n_noise=config.ivc_noise_samples,
            backend=config.backend)
        control_values = {**pattern.assignment, **ivc.assignment}

        quiescent = simulate_comb3(mapped, control_values)
        reorder: ReorderResult | None = None
        proposed_circuit = mapped
        if config.reorder_inputs:
            reorder = reorder_for_leakage(mapped, quiescent, library)
            proposed_circuit = reorder.circuit

        mux_plan = MuxPlan(tie_values={
            q: control_values[q] for q in addmux.muxable})

        ic_result = input_control_pattern(
            mapped, library, max_backtracks=config.max_backtracks)

        policies = {
            "traditional": ShiftPolicy(name="traditional"),
            "input_control": ic_result.policy(),
            "proposed": ShiftPolicy(
                name="proposed",
                pi_values={pi: control_values[pi]
                           for pi in mapped.inputs},
                mux_ties=dict(mux_plan.tie_values)),
        }

        proposed_design = design
        if proposed_circuit is not mapped:
            chain = ScanChain.from_circuit(
                proposed_circuit, order=design.chain.q_lines)
            proposed_design = ScanDesign(proposed_circuit, chain)

        reports = {
            "traditional": evaluate_scan_power(
                design, test_set.vectors, policies["traditional"],
                library, config.include_capture_cycles,
                backend=config.backend,
                episode_batch=config.episode_batch,
                stream_budget=config.stream_budget),
            "input_control": evaluate_scan_power(
                design, test_set.vectors, policies["input_control"],
                library, config.include_capture_cycles,
                backend=config.backend,
                episode_batch=config.episode_batch,
                stream_budget=config.stream_budget),
            "proposed": evaluate_scan_power(
                proposed_design, test_set.vectors, policies["proposed"],
                library, config.include_capture_cycles,
                backend=config.backend,
                episode_batch=config.episode_batch,
                stream_budget=config.stream_budget),
        }

        return FlowResult(
            circuit=mapped,
            design=design,
            test_set=test_set,
            addmux=addmux,
            pattern=pattern,
            ivc=ivc,
            input_control=ic_result,
            reorder=reorder,
            mux_plan=mux_plan,
            control_values=control_values,
            policies=policies,
            reports=reports,
        )
