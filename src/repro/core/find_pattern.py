"""FindControlledInputPattern — the paper's central algorithm (Section 4).

Finds one constant vector for the *controlled inputs* (primary inputs and
multiplexed pseudo-inputs) that suppresses, as close to their origin as
possible, the transitions entering the combinational logic from the
non-multiplexed pseudo-inputs — with every decision directed by leakage
observability so the surviving degrees of freedom favour low leakage.

Paper pseudo-code, implemented faithfully:

1. initialise the TNS to the non-multiplexed pseudo-inputs;
2. update TNS/TGS;
3. repeat until the TGS is empty:
   a. take the TGS gate with the largest output capacitance (``mc_tg``);
   b. ``cv`` = its controlling value;
   c. try its don't-care side inputs in leakage-observability order
      (min-obs first when cv = 1, max-obs first when cv = 0),
      justifying ``cv`` on each until one succeeds;
   d. on success the transition is blocked (the gate output is now a
      constant); on failure the transition passes — the gate's output
      joins the TNS and the gate never re-enters the TGS;
   e. re-run Update TNS/TGS.

Deviation note: the paper's step (f) reads "add all fan-out nodes of
mc_tg to TNS" unconditionally; applied after a *successful* block this
would mark a constant line as transitioning, which contradicts the TNS
definition and the Update procedure's own step (d).  We add the output to
the TNS only on failure.
"""

from __future__ import annotations

import dataclasses
from collections.abc import Mapping

from repro.cells.capacitance import switched_caps_ff
from repro.cells.library import CellLibrary, default_library
from repro.core.justify import Justifier
from repro.core.tns import update_tns_tgs
from repro.netlist.circuit import Circuit
from repro.netlist.gates import X, controlling_value
from repro.simulation.eval2 import comb_input_lines

__all__ = ["PatternResult", "find_controlled_input_pattern"]


@dataclasses.dataclass
class PatternResult:
    """Outcome of the transition-blocking search.

    Attributes
    ----------
    assignment:
        Values committed to controlled inputs (a subset; the rest remain
        don't-care and go to the IVC fill).
    values:
        The settled three-valued state of every line under ``assignment``
        (transitioning lines are X).
    blocked_gates / failed_gates:
        Gates where blocking succeeded / failed.
    tns:
        Final transition node set (lines still carrying transitions).
    justify_backtracks:
        Total backtracks spent in justification.
    """

    assignment: dict[str, int]
    values: dict[str, int]
    blocked_gates: list[str]
    failed_gates: list[str]
    tns: set[str]
    justify_backtracks: int

    @property
    def n_transition_lines(self) -> int:
        return len(self.tns)


def find_controlled_input_pattern(
    circuit: Circuit,
    controlled: set[str],
    transition_sources: set[str],
    observability: Mapping[str, float] | None = None,
    library: CellLibrary | None = None,
    max_backtracks: int = 50,
) -> PatternResult:
    """Run the paper's transition-blocking search.

    Parameters
    ----------
    circuit:
        The (tech-mapped) netlist.
    controlled:
        Assignable lines: primary inputs plus multiplexed pseudo-inputs.
    transition_sources:
        Non-multiplexed pseudo-inputs — the origins of scan-shift
        transitions.
    observability:
        Leakage observability per line (the directive); ``None`` disables
        the directive (structural order instead — ablation A1).
    """
    library = library or default_library()
    inputs = set(comb_input_lines(circuit))
    stray = (controlled | transition_sources) - inputs
    if stray:
        raise ValueError(f"not combinational inputs: {sorted(stray)}")
    overlap = controlled & transition_sources
    if overlap:
        raise ValueError(
            f"controlled lines cannot be transition sources: "
            f"{sorted(overlap)}")

    values: dict[str, int] = {line: X for line in circuit.lines()}
    engine = Justifier(circuit, values, controlled, observability,
                       max_backtracks)
    caps = switched_caps_ff(circuit, library)

    failed_gates: set[str] = set()
    blocked_gates: list[str] = []
    tried: set[str] = set()
    total_backtracks = 0

    while True:
        analysis = update_tns_tgs(circuit, values, set(transition_sources),
                                  failed_gates)
        candidates = {out: tns_inputs
                      for out, tns_inputs in analysis.tgs.items()
                      if out not in tried}
        if not candidates:
            break
        # Paper step (a): the TGS gate with the largest output capacitance.
        mc_tg = max(candidates,
                    key=lambda out: (caps.get(out, 0.0), out))
        tried.add(mc_tg)
        gate = circuit.gates[mc_tg]
        cv = controlling_value(gate.gtype)
        tn_inputs = set(candidates[mc_tg])
        side_inputs = [
            s for s in gate.inputs
            if s not in tn_inputs
            and values.get(s, X) == X
            and engine.has_support(s)
        ]
        ordered = engine.order_candidates(side_inputs, cv)
        blocked = False
        for candidate in ordered:
            result = engine.justify(candidate, cv)
            total_backtracks += result.backtracks
            if result.success:
                blocked = True
                break
        if blocked:
            blocked_gates.append(mc_tg)
        else:
            failed_gates.add(mc_tg)

    final = update_tns_tgs(circuit, values, set(transition_sources),
                           failed_gates)
    assignment = {
        line: values[line] for line in controlled
        if values.get(line, X) != X
    }
    return PatternResult(
        assignment=assignment,
        values=dict(values),
        blocked_gates=blocked_gates,
        failed_gates=sorted(failed_gates),
        tns=final.tns,
        justify_backtracks=total_backtracks,
    )
