"""PODEM-like justification directed by leakage observability.

This is the paper's ``Justify()`` (Section 4): set an internal objective
line to a target value by assigning only *controlled inputs* (primary
inputs and multiplexed pseudo-inputs), using

* **Backtrace** — walk from the objective towards the controlled inputs
  through X lines; at every gate-input choice, pick by leakage
  observability: "if the value to be set is '1' ('0'), we choose the
  input with minimum (maximum) leakage observability", which steers the
  search towards globally low-leakage assignments;
* **Implication** — three-valued forward propagation after every input
  decision (incremental, cone-limited);
* **Chronological backtracking** — bounded by ``max_backtracks``.

Failure (objective unjustifiable within the budget) is a normal outcome,
reported via :attr:`JustifyResult.success`; the circuit state is restored
exactly on failure, and retained (decisions + implications) on success.
"""

from __future__ import annotations

import dataclasses
import heapq
from collections.abc import Mapping

from repro.errors import JustificationError
from repro.netlist.circuit import Circuit
from repro.netlist.gates import (
    GateType,
    SEQUENTIAL_TYPES,
    X,
    controlled_response,
    controlling_value,
    eval_gate3,
)

__all__ = ["JustifyResult", "Justifier"]


@dataclasses.dataclass
class JustifyResult:
    """Outcome of one justification attempt.

    On success, ``decisions`` holds the controlled-input values committed
    to the shared state; ``implied`` counts lines fixed by implication.
    """

    success: bool
    decisions: dict[str, int]
    implied: int
    backtracks: int


class Justifier:
    """Shared justification engine over one evolving 3-valued state.

    Parameters
    ----------
    circuit:
        The netlist.
    values:
        The global three-valued assignment, **mutated in place** as
        objectives succeed (the transition-blocking loop accumulates
        assignments across many calls).
    controllable:
        Lines that may be assigned (primary inputs + muxed pseudo-inputs).
    observability:
        Per-line leakage observability used as the decision directive;
        ``None`` disables the directive (ablation A1) and falls back to a
        deterministic structural order.
    max_backtracks:
        Budget per :meth:`justify` call.
    """

    def __init__(self, circuit: Circuit, values: dict[str, int],
                 controllable: set[str],
                 observability: Mapping[str, float] | None = None,
                 max_backtracks: int = 50):
        self.circuit = circuit
        self.values = values
        self.controllable = set(controllable)
        self.observability = observability
        self.max_backtracks = max_backtracks
        self._support = self._compute_support()

    # ------------------------------------------------------------------ #
    # static controllable-support map (prunes hopeless backtrace branches)
    # ------------------------------------------------------------------ #

    def _compute_support(self) -> dict[str, bool]:
        support = {line: line in self.controllable
                   for line in self.circuit.lines()}
        for line in self.circuit.topo_order():
            gate = self.circuit.gates[line]
            support[line] = any(support[s] for s in gate.inputs)
        return support

    def has_support(self, line: str) -> bool:
        """True if the line's fanin cone reaches a controllable input."""
        return self._support.get(line, False)

    # ------------------------------------------------------------------ #
    # implication with trail
    # ------------------------------------------------------------------ #

    def _imply(self, seed: str, trail: dict[str, int]) -> None:
        """Propagate from ``seed``; record pre-change values in ``trail``."""
        pending: list[tuple[int, str]] = []
        queued: set[str] = set()

        def enqueue_fanout(line: str) -> None:
            for sink, _pin in self.circuit.fanout(line):
                gate = self.circuit.gates[sink]
                if gate.gtype in SEQUENTIAL_TYPES or sink in queued:
                    continue
                queued.add(sink)
                heapq.heappush(pending,
                               (self.circuit.level_of(sink), sink))

        enqueue_fanout(seed)
        while pending:
            _level, line = heapq.heappop(pending)
            queued.discard(line)
            gate = self.circuit.gates[line]
            new_value = eval_gate3(
                gate.gtype,
                [self.values.get(s, X) for s in gate.inputs])
            old_value = self.values.get(line, X)
            if new_value != old_value:
                trail.setdefault(line, old_value)
                self.values[line] = new_value
                enqueue_fanout(line)

    def _undo(self, trail: dict[str, int]) -> None:
        for line, old_value in trail.items():
            self.values[line] = old_value

    # ------------------------------------------------------------------ #
    # the observability directive
    # ------------------------------------------------------------------ #

    def order_candidates(self, candidates: list[str],
                          target_value: int) -> list[str]:
        """Order gate-input candidates for assignment to ``target_value``.

        With the directive: minimum observability first when justifying a
        1, maximum first when justifying a 0 (paper Section 4).  Without:
        deterministic structural order (level, then name).
        """
        if self.observability is None:
            return sorted(
                candidates,
                key=lambda s: (self.circuit.level_of(s), s))
        obs = self.observability
        if target_value == 1:
            return sorted(candidates, key=lambda s: (obs.get(s, 0.0), s))
        return sorted(candidates, key=lambda s: (-obs.get(s, 0.0), s))

    # ------------------------------------------------------------------ #
    # backtrace
    # ------------------------------------------------------------------ #

    def backtrace(self, line: str, value: int) -> tuple[str, int] | None:
        """Map objective ``(line, value)`` to a controlled-input decision.

        Returns ``None`` when every X path from the objective dead-ends
        (no controllable support left).
        """
        current, target = line, value
        for _ in range(len(self.circuit.gates) + 2):
            if current in self.controllable:
                return current, target
            gate = self.circuit.gates.get(current)
            if gate is None or gate.gtype in SEQUENTIAL_TYPES:
                return None  # reached an uncontrollable source
            candidates = [
                s for s in gate.inputs
                if self.values.get(s, X) == X and self.has_support(s)
            ]
            if not candidates:
                return None
            gtype = gate.gtype
            if gtype is GateType.NOT:
                current, target = gate.inputs[0], 1 - target
                continue
            if gtype is GateType.BUFF:
                current, target = gate.inputs[0], target
                continue
            if gtype in (GateType.XOR, GateType.XNOR):
                known = sum(self.values.get(s, 0)
                            for s in gate.inputs
                            if self.values.get(s, X) != X)
                parity = target if gtype is GateType.XOR else 1 - target
                required = (parity - known) % 2
                ordered = self.order_candidates(candidates, required)
                current, target = ordered[0], required
                continue
            if gtype is GateType.MUX2:
                sel = gate.inputs[0]
                if self.values.get(sel, X) == X and self.has_support(sel):
                    current, target = sel, 0
                else:
                    current, target = candidates[0], target
                continue
            cv = controlling_value(gtype)
            if cv is None:
                return None
            response = controlled_response(gtype)
            if target == response:
                required = cv
            else:
                required = 1 - cv
            ordered = self.order_candidates(candidates, required)
            current, target = ordered[0], required
        raise JustificationError(
            "backtrace exceeded circuit size")  # pragma: no cover

    # ------------------------------------------------------------------ #
    # the main loop
    # ------------------------------------------------------------------ #

    def justify(self, line: str, value: int) -> JustifyResult:
        """Try to set ``line`` to ``value`` via controlled inputs only."""
        if value not in (0, 1):
            raise JustificationError(f"target value {value!r} not 0/1")
        current = self.values.get(line, X)
        if current == value:
            return JustifyResult(True, {}, 0, 0)
        if current != X:
            return JustifyResult(False, {}, 0, 0)

        # decision stack entries: (input, chosen value, trail, both_tried)
        stack: list[tuple[str, int, dict[str, int], bool]] = []
        backtracks = 0

        def state() -> int:
            return self.values.get(line, X)

        while True:
            if state() == value:
                decisions = {entry[0]: entry[1] for entry in stack}
                implied = sum(len(entry[2]) for entry in stack) \
                    - len(stack)
                return JustifyResult(True, decisions, max(implied, 0),
                                     backtracks)
            decision = None
            if state() == X:
                decision = self.backtrace(line, value)
            if decision is not None:
                input_line, input_value = decision
                trail: dict[str, int] = {
                    input_line: self.values.get(input_line, X)}
                self.values[input_line] = input_value
                self._imply(input_line, trail)
                stack.append((input_line, input_value, trail, False))
                continue
            # Conflict or dead end: chronological backtracking.
            while stack:
                input_line, input_value, trail, both = stack.pop()
                self._undo(trail)
                if not both:
                    backtracks += 1
                    if backtracks > self.max_backtracks:
                        return JustifyResult(False, {}, 0, backtracks)
                    flipped = 1 - input_value
                    trail = {input_line: self.values.get(input_line, X)}
                    self.values[input_line] = flipped
                    self._imply(input_line, trail)
                    stack.append((input_line, flipped, trail, True))
                    break
            else:
                return JustifyResult(False, {}, 0, backtracks)
