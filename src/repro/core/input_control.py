"""The input-control baseline — Huang & Lee, TCAD 2001 (paper ref [8]).

Reference [8] reduces scan power by applying one constant pattern to the
**primary inputs only** during shift: its C-algorithm finds PI values that
block the propagation of scan-chain transitions through the combinational
logic.  No hardware is added, so transitions entering through *every*
pseudo-input must be stopped using PIs alone — which is exactly why the
paper's structure (that can also pin non-critical pseudo-inputs) wins.

We realise [8] with the same transition-blocking engine as the proposed
method, configured per the reference:

* controlled inputs = primary inputs only;
* transition sources = all pseudo-inputs;
* decisions in structural order (no leakage-observability directive — [8]
  predates leakage-aware test and targets switching activity only);
* remaining don't-care PIs tied to 0 (the reference leaves them
  arbitrary; a fixed fill keeps the baseline deterministic).
"""

from __future__ import annotations

import dataclasses

from repro.cells.library import CellLibrary, default_library
from repro.core.find_pattern import PatternResult, \
    find_controlled_input_pattern
from repro.netlist.circuit import Circuit
from repro.power.scanpower import ShiftPolicy

__all__ = ["InputControlResult", "input_control_pattern"]


@dataclasses.dataclass
class InputControlResult:
    """The [8] baseline's pattern and the analysis behind it."""

    pi_values: dict[str, int]
    pattern: PatternResult

    def policy(self) -> ShiftPolicy:
        """Shift policy applying the PI pattern (no MUXes)."""
        return ShiftPolicy(name="input_control", pi_values=self.pi_values,
                           mux_ties={})


def input_control_pattern(circuit: Circuit,
                          library: CellLibrary | None = None,
                          max_backtracks: int = 50,
                          dont_care_fill: int = 0) -> InputControlResult:
    """Compute the [8] PI control pattern for ``circuit``."""
    library = library or default_library()
    controlled = set(circuit.inputs)
    sources = set(circuit.dff_outputs)
    pattern = find_controlled_input_pattern(
        circuit, controlled, sources,
        observability=None, library=library,
        max_backtracks=max_backtracks)
    pi_values = {pi: pattern.assignment.get(pi, dont_care_fill)
                 for pi in circuit.inputs}
    return InputControlResult(pi_values=pi_values, pattern=pattern)
