"""Transition Node Set / Transition Gate Set bookkeeping (paper Section 4).

Definitions from the paper:

* a **transition node** (tn) is a line that may still carry transitions
  originating from the non-multiplexed pseudo-inputs under the current
  (partial) controlled-input assignment;
* the **TNS** is the set of all transition nodes;
* every gate fed by a tn is a **transition gate** (tg); the **TGS** holds
  the gates where a transition may yet be *blocked* by justifying a
  controlling value on a side input.

``update_tns_tgs`` is the paper's ``Update TNS, TGS`` procedure:

1. transitions always pass through NOT / BUFF / XOR / XNOR and fanout
   branches (no side input can stop them);
2. a controlling value on any side input kills the transition at that
   gate;
3. if every side input already holds a non-controlling value the
   transition passes to the gate's output;
4. otherwise (some side input is X) the gate is a blocking candidate and
   enters the TGS.

Gates on which blocking already *failed* (all candidates unjustifiable)
are treated as propagating, never re-entering the TGS.
"""

from __future__ import annotations

import dataclasses
from collections.abc import Mapping

from repro.netlist.circuit import Circuit
from repro.netlist.gates import (
    GateType,
    SEQUENTIAL_TYPES,
    TRANSPARENT_TYPES,
    X,
    controlling_value,
)

__all__ = ["TransitionAnalysis", "update_tns_tgs"]

#: Gates with a controlling value — the only ones blockable by one input.
_BLOCKABLE = frozenset({
    GateType.AND, GateType.NAND, GateType.OR, GateType.NOR,
})


@dataclasses.dataclass
class TransitionAnalysis:
    """Result of one TNS/TGS update pass.

    Attributes
    ----------
    tns:
        All transition nodes (closed under propagation).
    tgs:
        Blocking candidates: gate output -> list of its tn inputs.
    blocked_at:
        Gates where an assigned controlling side input stops a transition.
    """

    tns: set[str]
    tgs: dict[str, list[str]]
    blocked_at: set[str]


def update_tns_tgs(circuit: Circuit, values: Mapping[str, int],
                   sources: set[str],
                   failed_gates: set[str] | None = None
                   ) -> TransitionAnalysis:
    """Propagate transition reachability from ``sources``.

    Parameters
    ----------
    circuit:
        The netlist under analysis.
    values:
        Current three-valued line assignment (settled).
    sources:
        Seed transition nodes — the non-multiplexed pseudo-inputs, plus
        any gate outputs through which blocking has already failed.
    failed_gates:
        Gates where every blocking attempt failed; they propagate
        unconditionally and stay out of the TGS.
    """
    failed_gates = failed_gates or set()
    tns: set[str] = set()
    tgs: dict[str, list[str]] = {}
    blocked_at: set[str] = set()

    worklist = sorted(sources)
    while worklist:
        tn = worklist.pop()
        if tn in tns:
            continue
        tns.add(tn)
        for sink, _pin in circuit.fanout(tn):
            gate = circuit.gates[sink]
            if gate.gtype in SEQUENTIAL_TYPES:
                continue  # transitions stop at flop D pins in scan mode
            out = gate.output
            if out in tns:
                continue
            if gate.gtype in TRANSPARENT_TYPES or gate.gtype not in \
                    _BLOCKABLE:
                worklist.append(out)
                continue
            if sink in failed_gates:
                worklist.append(out)
                continue
            cv = controlling_value(gate.gtype)
            side = [s for s in gate.inputs if s != tn]
            side_values = [values.get(s, X) for s in side]
            if any(v == cv for v in side_values):
                blocked_at.add(out)
                tgs.pop(out, None)
                continue
            if all(v == (1 - cv) for v in side_values):
                worklist.append(out)
                tgs.pop(out, None)
                continue
            tgs.setdefault(out, []).append(tn)

    # A gate reached by several tn inputs may have been classified as a
    # candidate before a later tn pushed its output into the TNS; candidates
    # whose output carries a transition anyway are no candidates at all.
    for out in list(tgs):
        if out in tns:
            del tgs[out]
    return TransitionAnalysis(tns=tns, tgs=tgs, blocked_at=blocked_at)
