"""AddMUX — select the pseudo-inputs that can take a multiplexer.

Paper Section 4::

    AddMUX()
    1. Find delay of critical path(s) of the circuit
    2. For each pseudo-input PI
       a. Add a multiplexer to PI
       b. If the critical path delay of the circuit has changed after
          inserting the multiplexer, remove the multiplexer

Two implementations:

* ``method="slack"`` (default) — one STA; a pseudo-input keeps its MUX iff
  its *combinational* slack covers the MUX delay.  Under the linear delay
  model this is provably equivalent to re-inserting and re-timing (the MUX
  adds exactly its delay to every path through the pseudo-input and
  changes no load: the scan cell's launch is load-independent and the MUX
  drives the original sinks).
* ``method="reinsert"`` — the paper's literal procedure: physically insert
  the MUX (:func:`repro.scan.mux.insert_muxes`), rebuild the delay model,
  re-run STA, compare critical delays.  Quadratic; used for validation and
  small circuits.

A property test asserts both methods agree on every circuit they are both
run on.
"""

from __future__ import annotations

import dataclasses

from repro.cells.library import CellLibrary, default_library
from repro.errors import ScanError
from repro.netlist.circuit import Circuit
from repro.netlist.gates import SEQUENTIAL_TYPES, GateType
from repro.scan.mux import MuxPlan, insert_muxes
from repro.timing.delay import LibraryDelay
from repro.timing.sta import run_sta

__all__ = ["AddMuxResult", "add_mux"]

_TOL = 1e-9


@dataclasses.dataclass
class AddMuxResult:
    """Outcome of the AddMUX procedure.

    ``muxable`` lists pseudo-inputs that accepted a MUX (critical delay
    unchanged *and* at least one combinational sink to shield);
    ``rejected`` maps the others to the reason ("critical" or
    "no_comb_fanout").  ``slack_ps`` and ``mux_delay_ps`` record the
    decision inputs for reporting and ablations.
    """

    muxable: list[str]
    rejected: dict[str, str]
    baseline_delay_ps: float
    slack_ps: dict[str, float]
    mux_delay_ps: dict[str, float]

    @property
    def coverage(self) -> float:
        """Fraction of pseudo-inputs that received a MUX."""
        total = len(self.muxable) + len(self.rejected)
        return len(self.muxable) / total if total else 0.0

    def plan(self, tie_values: dict[str, int]) -> MuxPlan:
        """Build a :class:`MuxPlan` from chosen tie values.

        ``tie_values`` may cover a superset; only muxable lines are kept.
        """
        return MuxPlan(tie_values={
            q: tie_values[q] for q in self.muxable if q in tie_values})


def _comb_sinks(circuit: Circuit, line: str) -> list[str]:
    return [sink for sink, _pin in circuit.fanout(line)
            if circuit.gates[sink].gtype not in SEQUENTIAL_TYPES]


def _mux_delay_ps(circuit: Circuit, library: CellLibrary,
                  q_line: str) -> float:
    """Delay of a MUX driving the pseudo-input's gate sinks.

    The load is built explicitly from the gate sinks (a direct
    primary-output connection of the Q line stays on the scan cell side of
    the MUX, so the external output load is excluded).
    """
    load = 0.0
    for sink, _pin in circuit.fanout(q_line):
        gate = circuit.gates[sink]
        load += library.pin_cap_ff(gate.gtype, len(gate.inputs))
        load += library.wire_cap_per_fanout_ff
    return library.delay_ps(GateType.MUX2, 3, load)


def add_mux(circuit: Circuit, library: CellLibrary | None = None,
            method: str = "slack",
            margin_ps: float = 0.0) -> AddMuxResult:
    """Run AddMUX over all pseudo-inputs of ``circuit``.

    ``margin_ps`` demands extra headroom beyond the MUX delay (ablation
    A2 sweeps it; the paper's criterion is ``margin_ps = 0``).
    """
    library = library or default_library()
    if not circuit.dff_gates:
        raise ScanError(f"{circuit.name}: no pseudo-inputs (no flops)")
    if method not in ("slack", "reinsert"):
        raise ValueError(f"unknown AddMUX method {method!r}")

    model = LibraryDelay(circuit, library)
    sta = run_sta(circuit, model)
    baseline = sta.critical_delay

    muxable: list[str] = []
    rejected: dict[str, str] = {}
    slack_ps: dict[str, float] = {}
    mux_delay: dict[str, float] = {}

    for q_line in circuit.dff_outputs:
        delay = _mux_delay_ps(circuit, library, q_line)
        mux_delay[q_line] = delay
        slack = _effective_slack(circuit, model, sta, q_line)
        slack_ps[q_line] = slack
        if not _comb_sinks(circuit, q_line):
            rejected[q_line] = "no_comb_fanout"
            continue
        if method == "slack":
            accept = slack + _TOL >= delay + margin_ps
        else:
            # The literal re-timing check expresses only the paper's
            # "delay unchanged" criterion; margins are a slack-method
            # extension.
            accept = _reinsert_check(circuit, library, q_line, baseline)
        if accept:
            muxable.append(q_line)
        else:
            rejected[q_line] = "critical"

    return AddMuxResult(
        muxable=muxable,
        rejected=rejected,
        baseline_delay_ps=baseline,
        slack_ps=slack_ps,
        mux_delay_ps=mux_delay,
    )


def _effective_slack(circuit: Circuit, model: LibraryDelay, sta,
                     q_line: str) -> float:
    """Slack of ``q_line`` against the paths a MUX would lengthen.

    The MUX is inserted between the scan cell and its gate sinks, so the
    direct primary-output connection of the Q line (if any) keeps its
    timing; all gate sinks — combinational gates and other flops' D pins —
    see the extra delay.
    """
    arrival = sta.arrival[q_line]
    required = float("inf")
    for sink, _pin in circuit.fanout(q_line):
        gate = circuit.gates[sink]
        if gate.gtype in SEQUENTIAL_TYPES:
            required = min(required, sta.period)  # endpoint at the D pin
        else:
            required = min(required,
                           sta.required[gate.output] - model.delay_of(sink))
    return required - arrival


def _reinsert_check(circuit: Circuit, library: CellLibrary, q_line: str,
                    baseline: float) -> bool:
    """The paper's literal insert-and-retime check for one pseudo-input."""
    trial = insert_muxes(circuit, MuxPlan(tie_values={q_line: 0}))
    model = LibraryDelay(trial, library)
    sta = run_sta(trial, model)
    return sta.critical_delay <= baseline + _TOL
