"""Benchmark E2: regenerate Figure 2 (NAND2 leakage table at 45 nm).

Benchmarks the full from-scratch path: model calibration against the
paper's four anchor values plus characterisation of the whole cell
library.  The regenerated table is attached as ``extra_info``.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import run_once
from repro.netlist.gates import GateType
from repro.spice.calibrate import calibrate_to_figure2
from repro.spice.characterize import cell_leakage_table, characterize_nand
from repro.spice.constants import PAPER_NAND2_LEAKAGE_NA, TechParams


def test_figure2_calibration(benchmark):
    """Full recalibration from a distant starting point."""
    start = TechParams(s_n=20000, s_p=9000, g_n=85, g_p=17, eta_dibl=0.09)

    fitted = run_once(benchmark, calibrate_to_figure2, start)

    table = characterize_nand(2, fitted)
    benchmark.extra_info["nand2_model_na"] = {
        "".join(map(str, k)): round(v, 2) for k, v in table.items()}
    benchmark.extra_info["nand2_paper_na"] = {
        "".join(map(str, k)): v
        for k, v in PAPER_NAND2_LEAKAGE_NA.items()}
    for pattern, target in PAPER_NAND2_LEAKAGE_NA.items():
        assert table[pattern] == pytest.approx(target, rel=0.02)


def test_figure2_library_characterisation(benchmark):
    """Characterise every library cell at a fresh technology point
    (cache-busting corner) — the cost of building all leakage tables."""
    cells = [
        (GateType.NOT, 1), (GateType.NAND, 2), (GateType.NAND, 3),
        (GateType.NAND, 4), (GateType.NOR, 2), (GateType.NOR, 3),
        (GateType.NOR, 4), (GateType.BUFF, 1), (GateType.AND, 2),
        (GateType.OR, 2), (GateType.XOR, 2), (GateType.XNOR, 2),
        (GateType.MUX2, 3),
    ]

    def characterise_all():
        corner = TechParams().replace(vdd=0.9000001)  # defeat the cache
        return {
            (gtype.value, arity):
                cell_leakage_table(gtype, arity, corner)
            for gtype, arity in cells
        }

    tables = run_once(benchmark, characterise_all)
    benchmark.extra_info["n_cells"] = len(tables)
    assert all(all(v >= 0 for v in t.values()) for t in tables.values())
