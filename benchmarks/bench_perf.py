"""P1: component performance benchmarks.

Micro-benchmarks of the substrates the experiments lean on.  These run
with pytest-benchmark's normal statistics (multiple rounds), unlike the
one-shot experiment benches.
"""

from __future__ import annotations

import os

import pytest

from repro.atpg.collapse import collapse_faults
from repro.atpg.faults import all_faults
from repro.atpg.faultsim import fault_simulate
from repro.benchgen.loader import load_circuit
from repro.cells.library import default_library
from repro.leakage.estimator import per_sample_leakage
from repro.leakage.observability import monte_carlo_observability
from repro.simulation.bitsim import random_input_words, simulate_packed
from repro.simulation.cyclesim import simulate_cycles
from repro.techmap.mapper import technology_map
from repro.timing.delay import LibraryDelay
from repro.timing.sta import run_sta
from repro.utils.rng import make_rng
from repro.utils.timing import best_of


@pytest.fixture(scope="module")
def s1423_mapped():
    return technology_map(load_circuit("s1423", seed=1))


@pytest.fixture(scope="module")
def s1423_words(s1423_mapped):
    return random_input_words(s1423_mapped, 1024, make_rng(0))


@pytest.fixture(scope="module")
def s1423_words_4096(s1423_mapped):
    return random_input_words(s1423_mapped, 4096, make_rng(2))


@pytest.fixture(scope="module")
def s5378_mapped():
    return technology_map(load_circuit("s5378", seed=1))


@pytest.fixture(scope="module")
def s5378_words_4096(s5378_mapped):
    return random_input_words(s5378_mapped, 4096, make_rng(2))


#: Enforced numpy-vs-bigint speedup floor; noisy shared runners (CI) can
#: relax it without losing the recorded extra_info trajectory.
SPEEDUP_FLOOR = float(os.environ.get("REPRO_BENCH_SPEEDUP_FLOOR", "3.0"))


def test_perf_packed_simulation_1024(benchmark, s1423_mapped,
                                     s1423_words):
    """1024-pattern packed simulation of a ~900-gate circuit."""
    words = benchmark(simulate_packed, s1423_mapped, s1423_words, 1024)
    assert len(words) > 900
    benchmark.extra_info["gates"] = len(
        s1423_mapped.combinational_gates())
    benchmark.extra_info["patterns"] = 1024


def test_perf_cycle_simulation_with_leakage(benchmark, s1423_mapped,
                                            s1423_words):
    """Cycle simulation incl. per-gate leakage accumulation."""
    result = benchmark(simulate_cycles, s1423_mapped, s1423_words, 1024)
    assert result.mean_leakage_na > 0


def test_perf_per_sample_leakage(benchmark, s1423_mapped, s1423_words):
    samples = benchmark(per_sample_leakage, s1423_mapped, s1423_words,
                        1024)
    assert samples.shape == (1024,)


def test_perf_sta(benchmark, s1423_mapped):
    def full_sta():
        model = LibraryDelay(s1423_mapped)
        return run_sta(s1423_mapped, model)

    sta = benchmark(full_sta)
    assert sta.critical_delay > 0


def test_perf_observability(benchmark, s1423_mapped):
    obs = benchmark.pedantic(
        monte_carlo_observability,
        args=(s1423_mapped, 256),
        kwargs={"seed": 0},
        rounds=1, iterations=1, warmup_rounds=0)
    assert len(obs) == len(list(s1423_mapped.lines()))


def test_perf_backend_cycle_sim_speedup(benchmark, s5378_mapped,
                                        s5378_words_4096):
    """bigint vs numpy on the Table-I workload: cycle sim + leakage.

    Records the measured speedup in ``extra_info`` (the trajectory lands
    in the bench JSON) and enforces the >= 3x floor the backend exists
    for.
    """
    library = default_library()
    n = 4096

    def run(backend):
        return simulate_cycles(s5378_mapped, s5378_words_4096, n,
                               library, backend=backend)

    run("numpy")  # warm the schedule cache before timing
    bigint_s = best_of(3, lambda: run("bigint"))
    numpy_s = best_of(3, lambda: run("numpy"))
    result = benchmark(run, "numpy")

    speedup = bigint_s / numpy_s
    benchmark.extra_info["gates"] = len(
        s5378_mapped.combinational_gates())
    benchmark.extra_info["patterns"] = n
    benchmark.extra_info["bigint_ms"] = round(bigint_s * 1e3, 3)
    benchmark.extra_info["numpy_ms"] = round(numpy_s * 1e3, 3)
    benchmark.extra_info["speedup"] = round(speedup, 2)
    assert result.mean_leakage_na > 0
    assert speedup >= SPEEDUP_FLOOR, (
        f"numpy cycle-sim speedup {speedup:.2f}x below the "
        f"{SPEEDUP_FLOOR}x floor ({bigint_s * 1e3:.2f} ms bigint vs "
        f"{numpy_s * 1e3:.2f} ms numpy)")


def test_perf_backend_packed_sim_comparison(benchmark, s1423_mapped,
                                            s1423_words_4096):
    """bigint vs numpy raw packed simulation (words out, 4096 patterns)."""
    n = 4096

    def run(backend):
        return simulate_packed(s1423_mapped, s1423_words_4096, n,
                               backend=backend)

    run("numpy")  # warm the schedule cache before timing
    bigint_s = best_of(3, lambda: run("bigint"))
    numpy_s = best_of(3, lambda: run("numpy"))
    words = benchmark(run, "numpy")

    benchmark.extra_info["patterns"] = n
    benchmark.extra_info["bigint_ms"] = round(bigint_s * 1e3, 3)
    benchmark.extra_info["numpy_ms"] = round(numpy_s * 1e3, 3)
    benchmark.extra_info["speedup"] = round(bigint_s / numpy_s, 2)
    assert len(words) > 900


#: Enforced batched-vs-serial episode replay floor on the numpy engine.
EPISODE_SPEEDUP_FLOOR = float(
    os.environ.get("REPRO_BENCH_EPISODE_FLOOR", "2.0"))


def test_perf_episode_batch_speedup(benchmark, s1423_mapped):
    """Whole-test-set episode replay: batched engine vs per-episode loop.

    The Table-I measurement's shape: one scan episode per vector (74
    shift cycles + capture on s1423), evaluated over a full test set.
    The legacy path builds waveforms with per-vector/cycle/line Python
    loops plus one scalar capture simulation per vector; the batched
    engine compiles one :class:`EpisodePlan` (single packed capture
    pass + numpy shift tensor) and evaluates the whole replay in one
    ``uint64``-matrix pass.  Reports are asserted equal (bit-identical
    by contract) and the speedup is recorded as
    ``episode_batch_speedup`` and enforced >= 2x on the numpy backend
    (the regression gate diffs it across runs).
    """
    from repro.power.scanpower import evaluate_scan_power
    from repro.scan.testview import ScanDesign, TestVector

    design = ScanDesign.full_scan(s1423_mapped)
    gen = make_rng(7)
    vectors = [
        TestVector(
            pi_values={pi: int(gen.integers(2))
                       for pi in design.circuit.inputs},
            scan_state=tuple(int(gen.integers(2))
                             for _ in range(design.chain.length)))
        for _ in range(32)
    ]

    def run(batch):
        return evaluate_scan_power(design, vectors, backend="numpy",
                                   episode_batch=batch)

    batched = run(True)  # warms the schedule cache
    serial = run(False)
    assert batched == serial

    serial_s = best_of(3, lambda: run(False))
    batch_s = best_of(3, lambda: run(True))
    result = benchmark.pedantic(run, args=(True,),
                                rounds=1, iterations=1, warmup_rounds=0)

    speedup = serial_s / batch_s
    benchmark.extra_info["n_vectors"] = len(vectors)
    benchmark.extra_info["n_cycles"] = batched.n_cycles
    benchmark.extra_info["serial_ms"] = round(serial_s * 1e3, 3)
    benchmark.extra_info["batch_ms"] = round(batch_s * 1e3, 3)
    benchmark.extra_info["episode_batch_speedup"] = round(speedup, 2)
    assert result == serial
    assert speedup >= EPISODE_SPEEDUP_FLOOR, (
        f"episode batch speedup {speedup:.2f}x below the "
        f"{EPISODE_SPEEDUP_FLOOR}x floor ({serial_s * 1e3:.2f} ms serial "
        f"vs {batch_s * 1e3:.2f} ms batched)")


#: Enforced disabled-tracing efficiency floor: the instrumented episode
#: path with the recorder off must stay within ~2% of the same path
#: with the spans compiled out entirely.
TRACE_EFFICIENCY_FLOOR = float(
    os.environ.get("REPRO_BENCH_TRACE_EFFICIENCY_FLOOR", "0.98"))


def test_perf_tracing_disabled_overhead(benchmark, s1423_mapped,
                                        monkeypatch):
    """Disabled tracing on the episode-batch workload: near-zero cost.

    ``repro.obs`` instruments the hot paths unconditionally; the
    contract is that a span with the recorder off is two
    ``time.monotonic()`` calls and nothing else.  A direct A/B timing
    of the ~10 ms workload cannot resolve the microsecond-scale cost
    against shared-runner noise, so the overhead is computed from its
    factors: (spans entered per run, counted exactly) x (per-span
    disabled cost, microbenched tight) / (workload time).  The derived
    efficiency is enforced >= 0.98 — it trips if disabled spans ever
    grow real work *or* if instrumentation creeps into an inner loop
    and the span count explodes
    (``$REPRO_BENCH_TRACE_EFFICIENCY_FLOOR`` overrides; the regression
    gate diffs the ``tracing_off_efficiency`` trajectory).
    """
    import sys as _sys

    from repro.obs import trace as obs_trace
    from repro.power.scanpower import evaluate_scan_power
    from repro.scan.testview import ScanDesign, TestVector

    design = ScanDesign.full_scan(s1423_mapped)
    gen = make_rng(7)
    vectors = [
        TestVector(
            pi_values={pi: int(gen.integers(2))
                       for pi in design.circuit.inputs},
            scan_state=tuple(int(gen.integers(2))
                             for _ in range(design.chain.length)))
        for _ in range(32)
    ]

    def run():
        return evaluate_scan_power(design, vectors, backend="numpy",
                                   episode_batch=True)

    assert not obs_trace.tracing_enabled()
    reference = run()  # warms the schedule cache
    workload_s = best_of(5, run)

    # Exact span count on this workload: swap every module-level
    # ``span`` reference (plus the one the ``traced`` wrappers resolve
    # inside repro.obs.trace) for a counting subclass.
    real_span = obs_trace.span
    entered = [0]

    class _CountingSpan(real_span):
        def __init__(self, name, **attrs):
            entered[0] += 1
            super().__init__(name, **attrs)

    for name, module in list(_sys.modules.items()):
        if name.startswith("repro") and \
                getattr(module, "span", None) is real_span:
            monkeypatch.setattr(module, "span", _CountingSpan)
    monkeypatch.setattr(obs_trace, "span", _CountingSpan)
    assert run() == reference  # spans never touch results
    monkeypatch.undo()
    spans_per_run = entered[0]
    assert spans_per_run > 0  # the path IS instrumented

    # Per-span disabled cost, microbenched in a tight loop with
    # representative attrs.
    def span_loop():
        for _ in range(1000):
            with real_span("bench.overhead", backend="numpy",
                           cycles=75):
                pass

    span_loop()  # warm
    per_span_s = best_of(5, span_loop) / 1000

    overhead = spans_per_run * per_span_s / workload_s
    efficiency = 1.0 - overhead
    result = benchmark.pedantic(run, rounds=1, iterations=1,
                                warmup_rounds=0)
    assert result == reference
    benchmark.extra_info["n_vectors"] = len(vectors)
    benchmark.extra_info["spans_per_run"] = spans_per_run
    benchmark.extra_info["span_cost_us"] = round(per_span_s * 1e6, 3)
    benchmark.extra_info["workload_ms"] = round(workload_s * 1e3, 3)
    benchmark.extra_info["tracing_off_efficiency"] = round(
        efficiency, 4)
    assert efficiency >= TRACE_EFFICIENCY_FLOOR, (
        f"disabled tracing costs {overhead * 100:.2f}% of the "
        f"episode-batch workload ({spans_per_run} spans x "
        f"{per_span_s * 1e6:.2f} us over {workload_s * 1e3:.2f} ms); "
        f"floor {TRACE_EFFICIENCY_FLOOR}")


#: Enforced one-plan-vs-per-batch fault replay floor on the numpy engine.
FAULT_EPISODE_SPEEDUP_FLOOR = float(
    os.environ.get("REPRO_BENCH_FAULT_EPISODE_FLOOR", "3.0"))


def test_perf_fault_episode_speedup(benchmark, s1423_mapped):
    """Whole-test-set fault detection: one plan vs the per-batch loop.

    The Table-I / coverage-evaluation shape: the collapsed fault
    universe against a 1024-pattern test set.  The per-batch loop
    drives 16 independent 64-pattern ``fault_simulate`` calls (each
    re-simulating the good machine and re-dispatching the kernel) and
    OR-merges the detection words; the planned path packs the whole
    fault x pattern matrix into one :class:`FaultEpisodePlan` and
    replays it in a single 2-D-tiled kernel pass over one settled good
    state.  Merged detection words are asserted bit-identical, the
    speedup is recorded as ``fault_episode_speedup`` and enforced
    >= 3x on the numpy backend (``$REPRO_BENCH_FAULT_EPISODE_FLOOR``
    overrides; the regression gate diffs the trajectory).
    """
    from repro.simulation.backends import get_backend
    from repro.simulation.fault_episode import compile_fault_episode_plan
    from repro.simulation.values import mask

    universe = collapse_faults(s1423_mapped, all_faults(s1423_mapped))
    n_total, chunk = 1024, 64
    words = random_input_words(s1423_mapped, n_total, make_rng(3))
    chunk_words = [
        {line: (word >> start) & mask(chunk)
         for line, word in words.items()}
        for start in range(0, n_total, chunk)
    ]
    engine = get_backend("numpy")

    def per_batch():
        merged: dict = {}
        for i, batch in enumerate(chunk_words):
            result = engine.fault_simulate_batch(
                s1423_mapped, universe, batch, chunk, drop=False)
            for fault, word in result.detected.items():
                merged[fault] = merged.get(fault, 0) | (word << i * chunk)
        return merged

    def one_plan():
        plan = compile_fault_episode_plan(s1423_mapped, universe, words,
                                          n_total)
        return engine.fault_simulate_plan(plan, drop=False)

    reference = one_plan()  # warms the schedule + fault plan
    merged = per_batch()
    assert merged == dict(reference.detected)

    batch_s = best_of(3, per_batch)
    plan_s = best_of(3, one_plan)
    result = benchmark.pedantic(one_plan, rounds=1, iterations=1,
                                warmup_rounds=0)

    speedup = batch_s / plan_s
    benchmark.extra_info["n_faults"] = len(universe)
    benchmark.extra_info["patterns"] = n_total
    benchmark.extra_info["batches"] = len(chunk_words)
    benchmark.extra_info["per_batch_ms"] = round(batch_s * 1e3, 3)
    benchmark.extra_info["plan_ms"] = round(plan_s * 1e3, 3)
    benchmark.extra_info["fault_episode_speedup"] = round(speedup, 2)
    assert result.detected == reference.detected
    assert result.remaining == reference.remaining
    assert speedup >= FAULT_EPISODE_SPEEDUP_FLOOR, (
        f"fault episode speedup {speedup:.2f}x below the "
        f"{FAULT_EPISODE_SPEEDUP_FLOOR}x floor ({batch_s * 1e3:.2f} ms "
        f"per-batch vs {plan_s * 1e3:.2f} ms planned)")


#: Enforced array_api-vs-numpy efficiency floor: the namespace
#: indirection (xp dispatch + device/host boundary no-ops on numpy)
#: must cost <= ~10% on the planned fault replay workload.
ARRAY_API_EFFICIENCY_FLOOR = float(
    os.environ.get("REPRO_BENCH_ARRAY_API_EFFICIENCY_FLOOR", "0.9"))


def test_perf_array_api_overhead(benchmark, s1423_mapped):
    """array_api engine (numpy namespace) vs the direct numpy engine.

    Both engines now execute the *same* shared kernels
    (``repro.simulation.kernels``); the ``array_api`` path additionally
    resolves the namespace per dispatch and routes every slab through
    the ``to_device``/``to_host`` boundary (no-ops on numpy).  Results
    are asserted bit-identical and the relative efficiency
    numpy_s / array_api_s is recorded as
    ``array_api_overhead_efficiency`` and enforced >= 0.9
    (``$REPRO_BENCH_ARRAY_API_EFFICIENCY_FLOOR`` overrides; the
    regression gate auto-diffs the ``*_efficiency`` trajectory).
    """
    from repro.simulation.backends import get_backend
    from repro.simulation.fault_episode import compile_fault_episode_plan

    universe = collapse_faults(s1423_mapped, all_faults(s1423_mapped))
    n = 1024
    words = random_input_words(s1423_mapped, n, make_rng(3))
    plan = compile_fault_episode_plan(s1423_mapped, universe, words, n)

    def run(name):
        return get_backend(name).fault_simulate_plan(plan, drop=False)

    reference = run("numpy")      # warms schedule + fault plan + state
    via_api = run("array_api")    # warms its good-state entry
    assert via_api.detected == reference.detected
    assert via_api.remaining == reference.remaining

    numpy_s = best_of(5, lambda: run("numpy"))
    api_s = best_of(5, lambda: run("array_api"))
    result = benchmark.pedantic(run, args=("array_api",),
                                rounds=1, iterations=1, warmup_rounds=0)

    efficiency = numpy_s / api_s
    benchmark.extra_info["n_faults"] = len(universe)
    benchmark.extra_info["patterns"] = n
    benchmark.extra_info["numpy_ms"] = round(numpy_s * 1e3, 3)
    benchmark.extra_info["array_api_ms"] = round(api_s * 1e3, 3)
    benchmark.extra_info["array_api_overhead_efficiency"] = round(
        efficiency, 4)
    assert result.detected == reference.detected
    assert efficiency >= ARRAY_API_EFFICIENCY_FLOOR, (
        f"array_api efficiency {efficiency:.3f} below the "
        f"{ARRAY_API_EFFICIENCY_FLOOR} floor ({numpy_s * 1e3:.2f} ms "
        f"numpy vs {api_s * 1e3:.2f} ms array_api)")


def test_perf_fault_simulation(benchmark, s1423_mapped):
    universe = collapse_faults(s1423_mapped, all_faults(s1423_mapped))
    words = random_input_words(s1423_mapped, 64, make_rng(1))

    result = benchmark.pedantic(
        fault_simulate,
        args=(s1423_mapped, universe, words, 64),
        rounds=1, iterations=1, warmup_rounds=0)
    benchmark.extra_info["n_faults"] = len(universe)
    benchmark.extra_info["detected_by_64_random"] = result.n_detected
    assert result.n_detected > 0


def test_perf_fault_sim_backend_speedup(benchmark, s1423_mapped):
    """Fused numpy fault kernel vs scalar cone replay (Table-I workload).

    The ATPG compaction phase's shape: the collapsed fault universe
    against a 256-pattern packed batch (256 rather than 64 keeps the
    numpy side above ~50 ms, which stabilises the speedup *ratio* enough
    for the CI regression gate to diff it across runs).  Records the
    measured speedup in ``extra_info`` (the trajectory lands in the
    bench JSON) and enforces the >= 3x floor the kernel exists for;
    detection words are additionally asserted bit-identical across
    engines.
    """
    universe = collapse_faults(s1423_mapped, all_faults(s1423_mapped))
    n = 256
    words = random_input_words(s1423_mapped, n, make_rng(1))

    def run(backend):
        return fault_simulate(s1423_mapped, universe, words, n,
                              backend=backend)

    reference = run("bigint")
    vectorized = run("numpy")  # also warms the schedule + fault plan
    assert vectorized.detected == reference.detected
    assert vectorized.remaining == reference.remaining

    bigint_s = best_of(3, lambda: run("bigint"))
    numpy_s = best_of(5, lambda: run("numpy"))
    result = benchmark.pedantic(run, args=("numpy",),
                                rounds=1, iterations=1, warmup_rounds=0)

    speedup = bigint_s / numpy_s
    benchmark.extra_info["n_faults"] = len(universe)
    benchmark.extra_info["patterns"] = n
    benchmark.extra_info["bigint_ms"] = round(bigint_s * 1e3, 3)
    benchmark.extra_info["numpy_ms"] = round(numpy_s * 1e3, 3)
    benchmark.extra_info["speedup"] = round(speedup, 2)
    assert result.n_detected > 0
    assert speedup >= SPEEDUP_FLOOR, (
        f"numpy fault-sim speedup {speedup:.2f}x below the "
        f"{SPEEDUP_FLOOR}x floor ({bigint_s * 1e3:.2f} ms bigint vs "
        f"{numpy_s * 1e3:.2f} ms numpy)")


def test_perf_sharded_pool_vs_per_call_fork(benchmark, s1423_mapped):
    """Warm persistent pool vs per-call fork for repeated sharded calls.

    The ATPG inner loop's shape: many ``fault_simulate`` calls on the
    same circuit.  The per-call path pays a pool fork/teardown every
    call; the ``pool=`` hook dispatches to live workers whose interned
    plan caches survive across calls.  Records the speedup trajectory
    as ``pool_speedup`` (not floor-enforced: fork cost varies wildly
    across runners) and pins bit-identity against the inline kernel.
    """
    from repro.campaign.pool import WorkerPool
    from repro.simulation.backends import ShardedBackend

    universe = collapse_faults(s1423_mapped, all_faults(s1423_mapped))
    n = 64
    words = random_input_words(s1423_mapped, n, make_rng(1))
    calls = 3

    def run_batch(backend):
        for _ in range(calls):
            result = fault_simulate(s1423_mapped, universe, words, n,
                                    backend=backend)
        return result

    inline = fault_simulate(s1423_mapped, universe, words, n,
                            backend="numpy")  # warm plan + reference
    fork_backend = ShardedBackend(shards=2, min_faults_per_shard=64)
    with WorkerPool(processes=2) as pool:
        pooled = ShardedBackend(shards=2, min_faults_per_shard=64,
                                pool=pool)
        warm = run_batch(pooled)  # warm worker-side interned plans
        assert warm.detected == inline.detected
        assert warm.remaining == inline.remaining
        fork_s = best_of(2, lambda: run_batch(fork_backend))
        pool_s = best_of(2, lambda: run_batch(pooled))
        result = benchmark.pedantic(run_batch, args=(pooled,),
                                    rounds=1, iterations=1,
                                    warmup_rounds=0)
    assert result.detected == inline.detected
    benchmark.extra_info["n_faults"] = len(universe)
    benchmark.extra_info["calls"] = calls
    benchmark.extra_info["fork_ms"] = round(fork_s * 1e3, 3)
    benchmark.extra_info["pool_ms"] = round(pool_s * 1e3, 3)
    benchmark.extra_info["pool_speedup"] = round(fork_s / pool_s, 2)


#: Enforce the campaign parallel win only where 4 workers can actually
#: run in parallel; the measured speedup is recorded regardless.
CAMPAIGN_SPEEDUP_FLOOR = float(
    os.environ.get("REPRO_BENCH_CAMPAIGN_FLOOR", "2.0"))


def _usable_cpus() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def test_perf_campaign_table1_parallel(benchmark):
    """6-circuit Table-I campaign: serial vs ``--jobs 4`` wall clock.

    The paper's headline tables are embarrassingly parallel campaigns;
    this pins the orchestration win end to end (pool spawn, job
    pickling, artefact collection included).  Rows are asserted
    bit-identical between the serial and parallel runs; the >= 2x
    wall-clock floor is enforced only on machines with >= 4 usable
    CPUs (recorded as ``campaign_speedup`` everywhere).
    """
    from repro.campaign import CampaignSpec, run_campaign

    spec = CampaignSpec(
        circuits=("s344", "s382", "s444", "s510", "s641", "s713"),
        base={"observability_samples": 64, "ivc_trials": 8,
              "ivc_noise_samples": 4, "backend": "numpy"},
        name="bench-table1")

    serial = run_campaign(spec, jobs=1)
    parallel = benchmark.pedantic(run_campaign, args=(spec,),
                                  kwargs={"jobs": 4},
                                  rounds=1, iterations=1,
                                  warmup_rounds=0)
    assert parallel.rows() == serial.rows()

    speedup = serial.wall_s / parallel.wall_s
    benchmark.extra_info["n_jobs"] = len(spec.expand())
    benchmark.extra_info["usable_cpus"] = _usable_cpus()
    benchmark.extra_info["serial_s"] = round(serial.wall_s, 3)
    benchmark.extra_info["parallel_s"] = round(parallel.wall_s, 3)
    benchmark.extra_info["campaign_speedup"] = round(speedup, 2)
    if _usable_cpus() >= 4:
        assert speedup >= CAMPAIGN_SPEEDUP_FLOOR, (
            f"campaign --jobs 4 speedup {speedup:.2f}x below the "
            f"{CAMPAIGN_SPEEDUP_FLOOR}x floor "
            f"({serial.wall_s:.2f}s serial vs "
            f"{parallel.wall_s:.2f}s parallel)")


def test_perf_fault_sim_sharded(benchmark, s5378_mapped):
    """Sharded fault simulation on the largest tractable Table-I circuit.

    Pins that the multi-process merge stays bit-identical to the inline
    numpy kernel and records the shard speedup trajectory (not enforced:
    worker count and fork cost vary across runners).
    """
    from repro.simulation.backends import ShardedBackend

    universe = collapse_faults(s5378_mapped, all_faults(s5378_mapped))
    n = 64
    words = random_input_words(s5378_mapped, n, make_rng(1))
    sharded = ShardedBackend(shards=4, min_faults_per_shard=64)

    def run(backend):
        return fault_simulate(s5378_mapped, universe, words, n,
                              backend=backend)

    inline = run("numpy")  # warm plan before timing
    numpy_s = best_of(2, lambda: run("numpy"))
    sharded_s = best_of(2, lambda: run(sharded))
    result = benchmark.pedantic(run, args=(sharded,),
                                rounds=1, iterations=1, warmup_rounds=0)

    assert result.detected == inline.detected
    assert result.remaining == inline.remaining
    benchmark.extra_info["n_faults"] = len(universe)
    benchmark.extra_info["shards"] = sharded.effective_shards(len(universe))
    benchmark.extra_info["numpy_ms"] = round(numpy_s * 1e3, 3)
    benchmark.extra_info["sharded_ms"] = round(sharded_s * 1e3, 3)
    benchmark.extra_info["shard_speedup"] = round(numpy_s / sharded_s, 2)


#: Enforced disabled-chaos efficiency floor: the fault-injection probes
#: threaded through the queue/cache/service hot paths must be free when
#: no policy is installed — within ~2% of the same workload's cost.
CHAOS_EFFICIENCY_FLOOR = float(
    os.environ.get("REPRO_BENCH_CHAOS_EFFICIENCY_FLOOR", "0.98"))


def test_perf_chaos_disabled_overhead(benchmark, tmp_path):
    """Disabled chaos probes on the cache hot path: near-zero cost.

    ``repro.chaos`` guards every probe with one module-global ``None``
    check, exactly like disabled tracing.  A direct A/B timing cannot
    resolve the nanosecond-scale check against filesystem noise, so
    the overhead is computed from its factors: (probes entered per
    workload, counted exactly) x (per-probe disabled cost, microbenched
    tight) / (workload time).  The derived efficiency is enforced
    >= 0.98 — it trips if a disabled probe ever grows real work (e.g.
    resolving a policy per call) or if probes creep into an inner loop
    (``$REPRO_BENCH_CHAOS_EFFICIENCY_FLOOR`` overrides; the regression
    gate auto-diffs the ``*_efficiency`` trajectory).
    """
    import repro.chaos as chaos
    from repro.campaign.cache import ResultCache

    assert not chaos.chaos_enabled()
    cache = ResultCache(tmp_path / "bench-cache")
    artefact = {"rows": list(range(64)), "summary": "bench"}
    keys = [cache.key("flow", f"c{i}", "cfg", "code")
            for i in range(64)]

    def workload():
        for key in keys:
            cache.put(key, artefact)
            cache.get(key)

    # Count the probes the workload actually enters.
    counts = {"n": 0}
    real_mangle, real_point = chaos.mangle, chaos.point

    def counting_mangle(site, data):
        counts["n"] += 1
        return real_mangle(site, data)

    def counting_point(site):
        counts["n"] += 1
        real_point(site)

    chaos.mangle, chaos.point = counting_mangle, counting_point
    try:
        workload()
    finally:
        chaos.mangle, chaos.point = real_mangle, real_point
    probes_per_run = counts["n"]
    assert probes_per_run >= len(keys) * 2  # write + read mangles

    workload_s = best_of(5, workload)

    payload = b"x" * 256

    def probe_loop():
        for _ in range(1000):
            chaos.mangle("cache.read", payload)
            chaos.point("cache.write")
            chaos.fires("service.reset")

    probe_loop()  # warm
    per_probe_s = best_of(5, probe_loop) / 3000

    overhead = probes_per_run * per_probe_s / workload_s
    efficiency = 1.0 - overhead
    result = benchmark.pedantic(workload, rounds=1, iterations=1,
                                warmup_rounds=0)
    assert result is None
    benchmark.extra_info["probes_per_run"] = probes_per_run
    benchmark.extra_info["probe_cost_us"] = round(per_probe_s * 1e6, 4)
    benchmark.extra_info["workload_ms"] = round(workload_s * 1e3, 3)
    benchmark.extra_info["chaos_off_efficiency"] = round(efficiency, 4)
    assert efficiency >= CHAOS_EFFICIENCY_FLOOR, (
        f"disabled chaos costs {overhead * 100:.2f}% of the cache "
        f"workload ({probes_per_run} probes x {per_probe_s * 1e6:.3f} "
        f"us over {workload_s * 1e3:.2f} ms); "
        f"floor {CHAOS_EFFICIENCY_FLOOR}")
