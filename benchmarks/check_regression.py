"""Benchmark regression gate: diff recorded speedups against a baseline.

Compares the ``speedup``-style ``extra_info`` entries of a fresh
pytest-benchmark JSON against the previous run's artifact and fails when
any recorded speedup dropped by more than the allowed percentage.  Raw
timings are deliberately *not* compared — shared CI runners are too
noisy for that — but the bigint/numpy speedup *ratio* is measured on the
same machine in the same process, so a large drop there is a real
regression, not noise.

Usage (exit codes: 0 ok / baseline missing, 1 regression, 2 bad input)::

    python benchmarks/check_regression.py BENCH_ci.json baseline.json \
        --max-drop-pct 25
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

#: ``extra_info`` keys treated as guarded speedup ratios.  Listed
#: explicitly so renames are deliberate; :func:`is_guarded_key` also
#: guards every ``*_speedup`` / ``*_efficiency`` suffix so a newly
#: recorded ratio can never silently bypass the gate again (the
#: historical bug: ``pool_speedup``/``campaign_speedup`` were recorded
#: for two PRs without ever being diffed).
SPEEDUP_KEYS = ("speedup", "episode_batch_speedup",
                "fault_episode_speedup", "pool_speedup",
                "campaign_speedup", "shard_speedup",
                "scaling_efficiency")


def is_guarded_key(key: str) -> bool:
    """Whether an ``extra_info`` key is a gated machine-relative ratio."""
    return (key in SPEEDUP_KEYS or key.endswith("_speedup")
            or key.endswith("_efficiency"))


def load_speedups(path: Path) -> dict[tuple[str, str], float]:
    """``{(benchmark name, key): ratio}`` for every guarded entry."""
    with path.open() as handle:
        data = json.load(handle)
    speedups: dict[tuple[str, str], float] = {}
    for bench in data.get("benchmarks", []):
        extra = bench.get("extra_info", {})
        for key, value in extra.items():
            if is_guarded_key(key) and \
                    isinstance(value, (int, float)) and value > 0:
                speedups[(bench.get("name", "?"), key)] = float(value)
    return speedups


def compare(current: dict[tuple[str, str], float],
            baseline: dict[tuple[str, str], float],
            max_drop_pct: float) -> tuple[list[str], list[str]]:
    """``(problems, warnings)`` — only problems fail the gate.

    A benchmark present in the baseline but absent from the current run
    is a *warning*, not a failure: renaming or retiring a benchmark must
    not wedge the gate (the baseline only advances on green runs, so a
    hard failure here would repeat forever).  Speedup floors inside the
    bench suite still guard absolute performance.
    """
    problems: list[str] = []
    warnings: list[str] = []
    for key, base_value in sorted(baseline.items()):
        now = current.get(key)
        name = f"{key[0]}:{key[1]}"
        if now is None:
            warnings.append(f"{name}: not in the current run "
                            f"(baseline {base_value:.2f}x) — renamed or "
                            f"removed benchmark?")
            continue
        drop_pct = (base_value - now) / base_value * 100.0
        if drop_pct > max_drop_pct:
            problems.append(
                f"{name}: {base_value:.2f}x -> {now:.2f}x "
                f"({drop_pct:.1f}% drop > {max_drop_pct:.0f}% allowed)")
    return problems, warnings


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("current", type=Path,
                        help="bench JSON of this run")
    parser.add_argument("baseline", type=Path,
                        help="bench JSON of the previous run (may be "
                             "missing: gate passes with a notice)")
    parser.add_argument("--max-drop-pct", type=float, default=25.0,
                        help="largest tolerated speedup drop (percent)")
    args = parser.parse_args(argv)

    if not args.current.is_file():
        print(f"regression gate: current bench JSON {args.current} "
              f"not found", file=sys.stderr)
        return 2
    if not args.baseline.is_file():
        print(f"regression gate: no baseline at {args.baseline}; "
              f"skipping (first run on this branch?)")
        return 0

    current = load_speedups(args.current)
    baseline = load_speedups(args.baseline)
    if not baseline:
        print("regression gate: baseline has no recorded speedups; "
              "skipping")
        return 0

    problems, warnings = compare(current, baseline, args.max_drop_pct)
    for key, value in sorted(current.items()):
        base = baseline.get(key)
        base_text = f"{base:.2f}x" if base is not None else "n/a"
        print(f"  {key[0]}:{key[1]}: {value:.2f}x (baseline {base_text})")
    for warning in warnings:
        print(f"  warning: {warning}")
    if problems:
        print("regression gate: FAILED", file=sys.stderr)
        for problem in problems:
            print(f"  {problem}", file=sys.stderr)
        return 1
    print(f"regression gate: ok ({len(baseline)} speedup(s) within "
          f"{args.max_drop_pct:.0f}%)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
