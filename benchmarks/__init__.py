"""Benchmark suite regenerating the paper artefacts (pytest-benchmark)."""
