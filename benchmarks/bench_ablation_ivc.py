"""Ablation A4: random IVC fill budget sweep (refs [14]/[15]).

The paper fills the don't-care controlled inputs by random search and
cites [14]: "the number of the required simulations is far less than the
total possible vectors".  This bench sweeps the trial budget and records
the achieved leakage — the curve flattens after a few dozen trials, which
is exactly that claim.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import run_once
from repro.benchgen.loader import load_circuit
from repro.core.addmux import add_mux
from repro.core.find_pattern import find_controlled_input_pattern
from repro.leakage.ivc import random_fill_search
from repro.techmap.mapper import technology_map

_BUDGETS = (1, 8, 64, 256)


@pytest.fixture(scope="module")
def prepared():
    """Mapped s344 with the blocking pattern already computed."""
    circuit = technology_map(load_circuit("s344", seed=1))
    addmux = add_mux(circuit)
    controlled = set(circuit.inputs) | set(addmux.muxable)
    sources = set(circuit.dff_outputs) - set(addmux.muxable)
    pattern = find_controlled_input_pattern(circuit, controlled, sources)
    free = sorted(controlled - set(pattern.assignment))
    return circuit, pattern.assignment, free, sorted(sources)


@pytest.mark.parametrize("budget", _BUDGETS,
                         ids=[f"trials{b}" for b in _BUDGETS])
def test_ablation_ivc_budget(benchmark, prepared, budget):
    circuit, fixed, free, sources = prepared

    result = run_once(
        benchmark, random_fill_search, circuit, fixed, free,
        budget, 1, None, sources, 8)

    benchmark.extra_info["budget"] = budget
    benchmark.extra_info["free_lines"] = len(free)
    benchmark.extra_info["leakage_na"] = result.leakage_na
    assert result.leakage_na > 0
