"""Extension bench: chain-count sweep (test time vs shift power).

Splitting the flops over N parallel chains cuts shift cycles per vector
to ceil(L/N) — the classic test-time lever, orthogonal to the paper's
power lever.  This bench sweeps N on one circuit and records both the
test time (total scan clocks) and the power metrics, with and without
the proposed blocking policy.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import run_once
from repro.atpg.generate import AtpgConfig, generate_tests
from repro.benchgen.loader import load_circuit
from repro.power.scanpower import ShiftPolicy
from repro.scan.multichain import (
    MultiChainDesign,
    evaluate_multichain_power,
    total_test_cycles,
)
from repro.scan.testview import ScanDesign
from repro.techmap.mapper import technology_map

_CHAIN_COUNTS = (1, 2, 4)


@pytest.fixture(scope="module")
def prepared():
    circuit = technology_map(load_circuit("s382", seed=1))
    tests = generate_tests(ScanDesign.full_scan(circuit),
                           AtpgConfig(seed=1))
    return circuit, tests.vectors


@pytest.mark.parametrize("n_chains", _CHAIN_COUNTS,
                         ids=[f"chains{n}" for n in _CHAIN_COUNTS])
def test_multichain_sweep(benchmark, prepared, n_chains):
    circuit, vectors = prepared
    design = MultiChainDesign.partition(circuit, n_chains)

    report = run_once(benchmark, evaluate_multichain_power,
                      design, vectors)

    benchmark.extra_info["n_chains"] = n_chains
    benchmark.extra_info["test_cycles"] = total_test_cycles(
        design, len(vectors))
    benchmark.extra_info["dynamic_uw_per_hz"] = report.dynamic_uw_per_hz
    benchmark.extra_info["static_uw"] = report.static_uw
    benchmark.extra_info["total_transitions"] = report.total_transitions
    assert report.n_cycles == total_test_cycles(design, len(vectors))
