"""Ablation A5: the paper's "further improvements" claim, measured.

Table I explicitly excludes reordering: "No test vector reordering or
scan cell reordering was performed in these experiments.  By applying
reordering techniques, further improvements can be achieved."  This bench
applies the implemented vector/chain reordering on top of traditional
scan and reports the extra dynamic-power reduction.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import run_once
from repro.atpg.generate import AtpgConfig, generate_tests
from repro.benchgen.loader import load_circuit
from repro.power.scanpower import evaluate_scan_power
from repro.scan.ordering import reorder_chain, reorder_vectors
from repro.scan.testview import ScanDesign
from repro.techmap.mapper import technology_map

_CIRCUITS = ("s344", "s382")


@pytest.fixture(scope="module", params=_CIRCUITS)
def prepared(request):
    circuit = technology_map(load_circuit(request.param, seed=1))
    design = ScanDesign.full_scan(circuit)
    tests = generate_tests(design, AtpgConfig(seed=1))
    return request.param, design, tests.vectors


@pytest.mark.parametrize("technique", ["vectors", "chain", "both"])
def test_ablation_ordering(benchmark, prepared, technique):
    name, design, vectors = prepared
    base = evaluate_scan_power(design, vectors, include_capture=False)

    def apply_ordering():
        d, v = design, list(vectors)
        if technique in ("vectors", "both"):
            v, _result = reorder_vectors(d, v)
        if technique in ("chain", "both"):
            d, v, _result = reorder_chain(d, v)
        return evaluate_scan_power(d, v, include_capture=False)

    improved = run_once(benchmark, apply_ordering)

    delta = (base.dynamic_uw_per_hz - improved.dynamic_uw_per_hz) \
        / base.dynamic_uw_per_hz * 100
    benchmark.extra_info["circuit"] = name
    benchmark.extra_info["technique"] = technique
    benchmark.extra_info["base_dynamic_uw_per_hz"] = \
        base.dynamic_uw_per_hz
    benchmark.extra_info["reordered_dynamic_uw_per_hz"] = \
        improved.dynamic_uw_per_hz
    benchmark.extra_info["extra_improvement_pct"] = delta
    # the proxy is a heuristic; demand no material regression
    assert improved.dynamic_uw_per_hz <= base.dynamic_uw_per_hz * 1.25
