"""Benchmark E1: regenerate the paper's Table I, one bench per circuit.

Each bench runs the complete flow (techmap, ATPG, AddMUX, observability,
pattern search, IVC fill, reordering, three power evaluations) and
attaches the regenerated row — ours and the paper's — as
``extra_info``; wall time is the benchmark statistic.

Default scope: the small circuits.  ``REPRO_FULL_TABLE1=1`` extends to
all twelve Table I rows (the big ones take minutes each).
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import bench_circuits, run_once
from repro.benchgen.loader import circuit_provenance, load_circuit
from repro.core.flow import ProposedFlow
from repro.experiments.results import PAPER_TABLE1, Table1Row


@pytest.mark.parametrize("name", bench_circuits())
def test_table1_row(benchmark, flow_config, name):
    circuit = load_circuit(name, seed=1)
    flow = ProposedFlow(flow_config)

    result = run_once(benchmark, flow.run, circuit)

    row = Table1Row.from_reports(
        name,
        result.reports["traditional"],
        result.reports["input_control"],
        result.reports["proposed"])
    benchmark.extra_info["circuit"] = name
    benchmark.extra_info["provenance"] = circuit_provenance(name)
    benchmark.extra_info["dynamic_uw_per_hz"] = {
        "traditional": row.trad_dynamic,
        "input_control": row.ic_dynamic,
        "proposed": row.prop_dynamic,
    }
    benchmark.extra_info["static_uw"] = {
        "traditional": row.trad_static,
        "input_control": row.ic_static,
        "proposed": row.prop_static,
    }
    benchmark.extra_info["improvement_pct"] = {
        "vs_traditional": (row.imp_trad_dynamic, row.imp_trad_static),
        "vs_input_control": (row.imp_ic_dynamic, row.imp_ic_static),
    }
    paper = PAPER_TABLE1.get(name)
    if paper is not None:
        benchmark.extra_info["paper_improvement_pct"] = {
            "vs_traditional": (paper.imp_trad_dynamic,
                               paper.imp_trad_static),
            "vs_input_control": (paper.imp_ic_dynamic,
                                 paper.imp_ic_static),
        }

    # Shape assertions (the reproduction contract, not absolute values):
    assert row.prop_static < row.trad_static
    assert row.prop_dynamic < row.trad_dynamic
