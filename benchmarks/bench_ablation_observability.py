"""Ablation A1: the leakage-observability directive on vs off.

The paper's claim: directing the transition-blocking decisions by leakage
observability "allows us to select a low leakage vector out of all
possible vectors which can block the scan chain transitions".  This bench
runs the full flow both ways and records the static-power delta.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import run_once
from repro.benchgen.loader import load_circuit
from repro.core.config import FlowConfig
from repro.core.flow import ProposedFlow

_CIRCUITS = ("s344", "s382")


@pytest.mark.parametrize("name", _CIRCUITS)
@pytest.mark.parametrize("directed", [True, False],
                         ids=["directed", "undirected"])
def test_ablation_observability(benchmark, name, directed):
    config = FlowConfig(seed=1, use_observability_directive=directed)
    circuit = load_circuit(name, seed=1)
    flow = ProposedFlow(config)

    result = run_once(benchmark, flow.run, circuit)

    report = result.reports["proposed"]
    benchmark.extra_info["circuit"] = name
    benchmark.extra_info["directive"] = directed
    benchmark.extra_info["static_uw"] = report.static_uw
    benchmark.extra_info["dynamic_uw_per_hz"] = report.dynamic_uw_per_hz
    benchmark.extra_info["blocked_gates"] = len(
        result.pattern.blocked_gates)
    assert report.static_uw > 0
