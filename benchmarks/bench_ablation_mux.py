"""Ablation A2: MUX acceptance margin sweep.

The paper accepts a MUX whenever the critical path delay is unchanged
(margin 0).  Sweeping an extra required margin trades MUX coverage (and
with it, blocking power) against timing guard-band — the knee of that
curve is the design point the paper argues for.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import run_once
from repro.benchgen.loader import load_circuit
from repro.core.config import FlowConfig
from repro.core.flow import ProposedFlow

_MARGINS_PS = (0.0, 25.0, 75.0, 1e6)


@pytest.mark.parametrize("margin", _MARGINS_PS,
                         ids=[f"margin{m:g}" for m in _MARGINS_PS])
def test_ablation_mux_margin(benchmark, margin):
    config = FlowConfig(seed=1, mux_delay_margin_ps=margin)
    circuit = load_circuit("s344", seed=1)
    flow = ProposedFlow(config)

    result = run_once(benchmark, flow.run, circuit)

    report = result.reports["proposed"]
    benchmark.extra_info["margin_ps"] = margin
    benchmark.extra_info["mux_coverage"] = result.addmux.coverage
    benchmark.extra_info["n_muxed"] = len(result.addmux.muxable)
    benchmark.extra_info["dynamic_uw_per_hz"] = report.dynamic_uw_per_hz
    benchmark.extra_info["static_uw"] = report.static_uw
    benchmark.extra_info["area_overhead_um2"] = \
        result.mux_plan.area_overhead_um2()

    if margin == 0.0:
        assert result.addmux.coverage > 0
    if margin >= 1e6:
        assert result.addmux.coverage == 0
