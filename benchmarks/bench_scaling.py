"""Scaling-curve bench: time vs gates for every engine (ROADMAP item 3).

Generates synthetic circuits at a ladder of gate budgets with
:func:`repro.benchgen.generate_scaled`, then times the three
long-pole operations per engine and size:

* circuit generation (once per size; pins the de-quadraticized
  generator),
* whole-test-set power replay (``evaluate_scan_power`` over a compiled
  :class:`EpisodePlan`),
* whole-test-set fault detection on a sampled fault universe
  (``FaultSimSession`` over a :class:`FaultEpisodePlan`).

A ``--stream-budget`` (or ``$REPRO_STREAM_BUDGET``) routes the replay
and detection passes through the out-of-core streaming path, so the
curve demonstrates bounded-memory scaling; streamed results are
bit-identical to resident by contract, so the curve is the only thing
that changes.

Output is a pytest-benchmark-compatible JSON (``{"benchmarks": [...]}``,
one entry per engine x size plus one summary entry per engine) that
``check_regression.py`` can diff: per-engine ``*_efficiency`` ratios
(per-gate time at the smallest size over per-gate time at the largest
— 1.0 is perfectly linear scaling, below 1 is superlinear blowup) are
guarded keys; the fitted log-log exponents ride along as unguarded
``extra_info``.

Usage::

    python benchmarks/bench_scaling.py --gates 10000,100000 \
        --engines numpy,sharded --stream-budget 500000 -o scaling.json
"""

from __future__ import annotations

import argparse
import json
import math
import os
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.atpg.faults import all_faults  # noqa: E402
from repro.benchgen import generate_scaled  # noqa: E402
from repro.power.scanpower import evaluate_scan_power  # noqa: E402
from repro.scan.testview import ScanDesign, TestVector  # noqa: E402
from repro.simulation.bitsim import random_input_words  # noqa: E402
from repro.simulation.fault_episode import FaultSimSession  # noqa: E402
from repro.techmap.mapper import technology_map  # noqa: E402
from repro.utils.rng import make_rng  # noqa: E402

#: Engines swept by default; bigint is capped (see ``--bigint-cap``)
#: because the reference engine is the quantity being escaped.
DEFAULT_ENGINES = ("bigint", "numpy", "sharded")
DEFAULT_GATES = (1_000, 10_000, 100_000)


def _parse_int_list(text: str) -> tuple[int, ...]:
    return tuple(int(part) for part in text.split(",") if part)


def _time_once(fn) -> tuple[float, object]:
    start = time.perf_counter()
    result = fn()
    return time.perf_counter() - start, result


def _best(repeats: int, fn) -> tuple[float, object]:
    best_s, result = _time_once(fn)
    for _ in range(repeats - 1):
        elapsed, result = _time_once(fn)
        best_s = min(best_s, elapsed)
    return best_s, result


def _vectors(design: ScanDesign, n_vectors: int, seed: int
             ) -> list[TestVector]:
    gen = make_rng(seed)
    return [
        TestVector(
            pi_values={pi: int(gen.integers(2))
                       for pi in design.circuit.inputs},
            scan_state=tuple(int(gen.integers(2))
                             for _ in range(design.chain.length)))
        for _ in range(n_vectors)
    ]


def _sample_faults(circuit, n_sample: int, seed: int):
    universe = all_faults(circuit)
    if len(universe) <= n_sample:
        return universe
    gen = make_rng(seed)
    picks = sorted(gen.choice(len(universe), size=n_sample,
                              replace=False).tolist())
    return [universe[i] for i in picks]


def bench_size(n_gates: int, args: argparse.Namespace,
               engines: tuple[str, ...]) -> list[dict]:
    """One ladder rung: generate once, time replay + detection per engine."""
    gen_s, raw = _time_once(
        lambda: generate_scaled(n_gates, seed=args.seed,
                                n_dffs=args.dffs))
    map_s, circuit = _time_once(lambda: technology_map(raw))
    design = ScanDesign.full_scan(circuit)
    vectors = _vectors(design, args.vectors, args.seed)
    faults = _sample_faults(circuit, args.faults, args.seed)
    words = random_input_words(circuit, args.patterns,
                               make_rng(args.seed + 1))

    records = []
    for engine in engines:
        replay_s, report = _best(args.repeats, lambda: evaluate_scan_power(
            design, vectors, backend=engine,
            stream_budget=args.stream_budget))
        session = FaultSimSession(circuit, engine,
                                  stream_budget=args.stream_budget)
        fault_s, result = _best(args.repeats, lambda: session.simulate(
            faults, words, args.patterns, drop=False))
        total_s = replay_s + fault_s
        print(f"  {engine:>7}: replay {replay_s * 1e3:9.1f} ms   "
              f"fault {fault_s * 1e3:9.1f} ms   "
              f"({result.n_detected}/{len(faults)} detected)")
        records.append({
            "name": f"scaling_{engine}_g{n_gates}",
            "stats": {"mean": total_s},
            "extra_info": {
                "engine": engine,
                "gates": n_gates,
                "mapped_gates": len(circuit.combinational_gates()),
                "patterns": args.patterns,
                "n_vectors": args.vectors,
                "n_cycles": report.n_cycles,
                "faults_sampled": len(faults),
                "stream_budget": args.stream_budget,
                "gen_s": round(gen_s, 4),
                "map_s": round(map_s, 4),
                "replay_s": round(replay_s, 4),
                "fault_s": round(fault_s, 4),
            },
        })
    return records


def _fit_exponent(sizes: list[int], times: list[float]) -> float:
    """Least-squares slope of log(time) against log(gates)."""
    xs = [math.log(s) for s in sizes]
    ys = [math.log(max(t, 1e-9)) for t in times]
    n = len(xs)
    mean_x, mean_y = sum(xs) / n, sum(ys) / n
    denom = sum((x - mean_x) ** 2 for x in xs)
    if denom == 0:
        return 0.0
    return sum((x - mean_x) * (y - mean_y)
               for x, y in zip(xs, ys)) / denom


def summarize(engine: str, rungs: list[dict]) -> dict | None:
    """Per-engine curve summary: guarded efficiencies + fitted exponents."""
    mine = [r for r in rungs if r["extra_info"]["engine"] == engine]
    if len(mine) < 2:
        return None
    mine.sort(key=lambda r: r["extra_info"]["gates"])
    sizes = [r["extra_info"]["gates"] for r in mine]
    extra: dict = {"engine": engine, "gates_ladder": sizes}
    for metric in ("replay_s", "fault_s"):
        times = [r["extra_info"][metric] for r in mine]
        per_gate = [t / s for t, s in zip(times, sizes)]
        short = metric[:-2]  # "replay" / "fault"
        # Per-gate time at the smallest size over the largest: 1.0 is
        # linear scaling, < 1 superlinear.  Guarded (suffix match).
        extra[f"{short}_efficiency"] = round(
            per_gate[0] / max(per_gate[-1], 1e-12), 3)
        extra[f"{short}_exponent"] = round(
            _fit_exponent(sizes, times), 3)
    return {"name": f"scaling_{engine}", "stats": {"mean": 0.0},
            "extra_info": extra}


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--gates", type=_parse_int_list,
                        default=DEFAULT_GATES, metavar="N,N,...",
                        help="gate-count ladder (default 1e3,1e4,1e5; "
                             "pass 1000000 explicitly for the "
                             "million-gate rung)")
    parser.add_argument("--engines", default=",".join(DEFAULT_ENGINES),
                        metavar="E,E,...",
                        help="engines to sweep (default bigint,numpy,"
                             "sharded)")
    parser.add_argument("--bigint-cap", type=int, default=20_000,
                        metavar="N",
                        help="largest size the bigint reference runs at "
                             "(default 20000)")
    parser.add_argument("--patterns", type=int, default=256, metavar="N",
                        help="fault-detection pattern count (default 256)")
    parser.add_argument("--vectors", type=int, default=8, metavar="N",
                        help="power-replay test vectors (default 8)")
    parser.add_argument("--faults", type=int, default=200, metavar="N",
                        help="sampled fault-universe size (default 200)")
    parser.add_argument("--dffs", type=int, default=64, metavar="N",
                        help="flop count (fixed so the episode length "
                             "stays constant and the curve isolates "
                             "gate-count scaling; default 64)")
    parser.add_argument("--stream-budget", type=int, metavar="N",
                        default=None,
                        help="out-of-core streaming budget in uint64 "
                             "elements (default $REPRO_STREAM_BUDGET, "
                             "else resident)")
    parser.add_argument("--repeats", type=int, default=1, metavar="N",
                        help="timing repeats, best-of (default 1)")
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument("-o", "--output", type=Path, default=None,
                        help="write pytest-benchmark-style JSON here")
    args = parser.parse_args(argv)

    if args.stream_budget is None:
        env = os.environ.get("REPRO_STREAM_BUDGET", "")
        args.stream_budget = int(env) if env else None

    engines = tuple(e for e in args.engines.split(",") if e)
    rungs: list[dict] = []
    for n_gates in sorted(set(args.gates)):
        sized = tuple(e for e in engines
                      if e != "bigint" or n_gates <= args.bigint_cap)
        if not sized:
            print(f"{n_gates} gates: skipped (only bigint requested and "
                  f"size exceeds --bigint-cap {args.bigint_cap})")
            continue
        skipped = set(engines) - set(sized)
        budget = args.stream_budget
        print(f"{n_gates} gates (stream_budget="
              f"{budget if budget is not None else 'off'}"
              f"{', skipping ' + ','.join(sorted(skipped)) if skipped else ''})")
        rungs.extend(bench_size(n_gates, args, sized))

    benchmarks = list(rungs)
    for engine in engines:
        summary = summarize(engine, rungs)
        if summary is not None:
            benchmarks.append(summary)
            extra = summary["extra_info"]
            print(f"{engine}: replay exponent "
                  f"{extra['replay_exponent']:.2f} "
                  f"(efficiency {extra['replay_efficiency']:.2f}), "
                  f"fault exponent {extra['fault_exponent']:.2f} "
                  f"(efficiency {extra['fault_efficiency']:.2f})")

    if args.output is not None:
        args.output.write_text(json.dumps(
            {"benchmarks": benchmarks}, indent=2) + "\n")
        print(f"wrote {args.output} ({len(benchmarks)} entries)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
