"""Ablation A3: contribution of commutative-gate input reordering.

The paper's final step swaps gate inputs so the quiescent scan-mode
pattern hits low-leakage table rows (NAND2 "01" at 73 nA instead of "10"
at 264 nA).  This bench isolates that step's static-power contribution.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import run_once
from repro.benchgen.loader import load_circuit
from repro.core.config import FlowConfig
from repro.core.flow import ProposedFlow

_CIRCUITS = ("s344", "s444")


@pytest.mark.parametrize("name", _CIRCUITS)
@pytest.mark.parametrize("reorder", [True, False],
                         ids=["reorder", "no-reorder"])
def test_ablation_reorder(benchmark, name, reorder):
    config = FlowConfig(seed=1, reorder_inputs=reorder)
    circuit = load_circuit(name, seed=1)
    flow = ProposedFlow(config)

    result = run_once(benchmark, flow.run, circuit)

    report = result.reports["proposed"]
    benchmark.extra_info["circuit"] = name
    benchmark.extra_info["reorder"] = reorder
    benchmark.extra_info["static_uw"] = report.static_uw
    if reorder:
        assert result.reorder is not None
        benchmark.extra_info["swapped_gates"] = len(
            result.reorder.swapped_gates)
        benchmark.extra_info["predicted_saving_na"] = \
            result.reorder.saved_na
    # Reordering must never hurt dynamic power (same transitions/loads).
    benchmark.extra_info["dynamic_uw_per_hz"] = report.dynamic_uw_per_hz
