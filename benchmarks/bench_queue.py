"""Distributed queue overhead: multi-worker drain vs in-process run.

The work queue trades per-job filesystem transactions (enqueue, claim
rename, heartbeat, done marker) for multi-host fan-out.  These benches
measure that overhead directly: a whole-campaign drain through
``run_worker`` (cold cache, N concurrent worker threads) against the
in-process ``run_campaign`` reference, plus the pure transaction cost
with the executor stubbed to a no-op — the queue-tax ceiling per job.
"""

from __future__ import annotations

import threading

import pytest

from benchmarks.conftest import run_once
from repro.campaign.cache import ResultCache
from repro.campaign.manifest import CampaignSpec
from repro.campaign.queue import WorkQueue, run_worker
from repro.campaign.runner import run_campaign

_WORKERS = (1, 2, 4)


def _spec(n_seeds: int) -> CampaignSpec:
    return CampaignSpec(circuits=("s27",),
                        seeds=tuple(range(1, n_seeds + 1)),
                        name="bench-queue")


def _drain(queue_dir, cache_dir, workers: int):
    threads = [
        threading.Thread(
            target=run_worker, args=(queue_dir, cache_dir),
            kwargs={"worker_id": f"bench-{i}", "poll_s": 0.01})
        for i in range(workers)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()


@pytest.mark.parametrize("workers", _WORKERS,
                         ids=[f"workers{n}" for n in _WORKERS])
def test_queue_drain(benchmark, tmp_path, workers):
    """Cold-cache drain of an 8-job campaign by N workers."""
    spec = _spec(8)
    queue_dir = tmp_path / "queue"
    cache_dir = tmp_path / "cache"
    WorkQueue(queue_dir).enqueue(spec)

    run_once(benchmark, _drain, queue_dir, cache_dir, workers)

    cache = ResultCache(cache_dir)
    depth = WorkQueue(queue_dir).depth()
    benchmark.extra_info["workers"] = workers
    benchmark.extra_info["jobs"] = depth.total
    benchmark.extra_info["cached_entries"] = len(cache.entries())
    assert depth.done == 8 and depth.outstanding == 0


def test_campaign_inprocess_reference(benchmark, tmp_path):
    """The same 8 jobs through ``run_campaign`` (no queue)."""
    result = run_once(
        benchmark, run_campaign, _spec(8),
        cache_dir=str(tmp_path / "cache"))

    benchmark.extra_info["jobs"] = len(result.jobs)
    assert result.n_executed == 8


def test_queue_transaction_overhead(benchmark, tmp_path, monkeypatch):
    """Pure queue tax: 32 jobs with the flow executor stubbed out."""
    import repro.campaign.runner as runner

    def _noop(payload):
        return {"kind": runner.FLOW_ARTEFACT_KIND,
                "job_id": payload["job_id"],
                "circuit": payload["circuit"],
                "seed": payload["seed"], "row": {},
                "summary": "noop", "elapsed_s": 0.0}

    monkeypatch.setattr(runner, "_execute_flow_job", _noop)
    spec = _spec(32)
    queue_dir = tmp_path / "queue"
    WorkQueue(queue_dir).enqueue(spec)

    stats = run_once(benchmark, run_worker, queue_dir,
                     tmp_path / "cache", poll_s=0.01)

    benchmark.extra_info["jobs"] = 32
    benchmark.extra_info["per_job_ms"] = (
        stats.wall_s / 32.0 * 1000.0)
    assert stats.executed == 32
