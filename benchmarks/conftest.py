"""Shared helpers for the benchmark suite.

Heavy experiment benches run the measured function exactly once
(``pedantic`` with one round): the quantity of interest is the
regenerated experiment data (attached as ``extra_info``), with wall time
as a by-product.  Set ``REPRO_FULL_TABLE1=1`` to extend the Table I bench
to all twelve circuits.
"""

from __future__ import annotations

import os

import pytest

from repro.core.config import FlowConfig

#: Circuits benchmarked by default (small/medium rows of Table I).
SMALL_CIRCUITS = ("s27", "s344", "s382", "s444")

#: Full Table I sweep (only with REPRO_FULL_TABLE1=1).
FULL_CIRCUITS = (
    "s344", "s382", "s444", "s510", "s641", "s713",
    "s1196", "s1238", "s1423", "s1494", "s5378", "s9234",
)


def bench_circuits() -> tuple[str, ...]:
    if os.environ.get("REPRO_FULL_TABLE1", "") not in ("", "0"):
        return FULL_CIRCUITS
    return SMALL_CIRCUITS


@pytest.fixture(scope="session")
def flow_config() -> FlowConfig:
    """The configuration used by every experiment bench."""
    return FlowConfig(seed=1)


def run_once(benchmark, fn, *args, **kwargs):
    """Run ``fn`` exactly once under the benchmark fixture."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                              rounds=1, iterations=1, warmup_rounds=0)
