#!/usr/bin/env python3
"""Device-model tour: Figure 2, stack effect, and input reordering.

Shows the leakage characterisation layer on its own:

1. the calibrated NAND2 table versus the paper's Figure 2;
2. the series-stack effect and pass-degradation asymmetry that create
   the 73 vs 264 nA spread;
3. what gate input reordering buys on a whole netlist.

Run:  python examples/leakage_tables.py
"""

from repro import GateType, load_circuit
from repro.cells import default_library
from repro.leakage import circuit_leakage_na, reorder_for_leakage
from repro.simulation import simulate_comb, comb_input_lines
from repro.spice import (
    PAPER_NAND2_LEAKAGE_NA,
    blocked_stack_current,
    default_tech,
)
from repro.techmap import technology_map


def main() -> None:
    library = default_library()
    tech = default_tech()

    print("NAND2 leakage vs paper Figure 2 (nA):")
    table = library.leakage_table(GateType.NAND, 2)
    for pattern in sorted(PAPER_NAND2_LEAKAGE_NA):
        label = "".join(map(str, pattern))
        print(f"  A,B={label}: model {table[pattern]:7.1f}   "
              f"paper {PAPER_NAND2_LEAKAGE_NA[pattern]:7.1f}")

    print("\nWhy 01 and 10 differ (pull-down stack, w=2):")
    top_off = blocked_stack_current(tech, [True, False], 2.0)
    bottom_off = blocked_stack_current(tech, [False, True], 2.0)
    both_off = blocked_stack_current(tech, [False, False], 2.0)
    print(f"  OFF device at output side : {top_off.current_na:6.1f} nA "
          f"(full VDS -> strong DIBL)")
    print(f"  OFF device at ground side : {bottom_off.current_na:6.1f} nA "
          f"(sees only VDD - VT = {bottom_off.effective_top:.2f} V)")
    print(f"  both OFF (stack effect)   : {both_off.current_na:6.1f} nA")

    print("\nInput reordering on a full netlist (s444):")
    circuit = technology_map(load_circuit("s444", seed=1))
    lines = comb_input_lines(circuit)
    quiescent = simulate_comb(
        circuit, {line: (i % 2) for i, line in enumerate(lines)})
    before = circuit_leakage_na(circuit, quiescent, library)
    result = reorder_for_leakage(circuit, quiescent, library)
    after_values = simulate_comb(
        result.circuit, {line: (i % 2) for i, line in enumerate(lines)})
    after = circuit_leakage_na(result.circuit, after_values, library)
    print(f"  {len(result.swapped_gates)} gates swapped; leakage "
          f"{before:.0f} -> {after:.0f} nA "
          f"({(before - after) / before:.1%} saved at this state)")


if __name__ == "__main__":
    main()
