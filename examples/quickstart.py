#!/usr/bin/env python3
"""Quickstart: run the paper's full method on one circuit.

Loads the ISCAS89 s344 benchmark (a synthetic equivalent unless the real
netlist is available via $REPRO_ISCAS89_DIR), runs the proposed low-power
scan flow, and prints the per-method power numbers next to the paper's
Table I row.

Run:  python examples/quickstart.py [circuit] [seed]
"""

import sys

from repro import FlowConfig, ProposedFlow, load_circuit
from repro.benchgen import circuit_provenance
from repro.experiments import paper_row


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "s344"
    seed = int(sys.argv[2]) if len(sys.argv) > 2 else 1

    circuit = load_circuit(name, seed=seed)
    print(f"Loaded {name} ({circuit_provenance(name)}): "
          f"{len(circuit.inputs)} PIs, {len(circuit.dff_gates)} flops, "
          f"{len(circuit.combinational_gates())} gates")

    flow = ProposedFlow(FlowConfig(seed=seed))
    result = flow.run(circuit)
    print()
    print(result.summary())

    reference = paper_row(name)
    if reference is not None:
        print()
        print("Paper Table I reference for this circuit:")
        print(f"  improvement vs traditional:   "
              f"dynamic {reference.imp_trad_dynamic:.2f}%, "
              f"static {reference.imp_trad_static:.2f}%")
        print(f"  improvement vs input control: "
              f"dynamic {reference.imp_ic_dynamic:.2f}%, "
              f"static {reference.imp_ic_static:.2f}%")

    print()
    print(f"MUX plan: {len(result.mux_plan.tie_values)} of "
          f"{len(result.design.pseudo_inputs)} pseudo-inputs muxed, "
          f"area overhead {result.mux_plan.area_overhead_um2():.1f} um^2")
    blocked = len(result.pattern.blocked_gates)
    print(f"Transition blocking: {blocked} gates blocked, "
          f"{len(result.pattern.tns)} lines still transitioning")


if __name__ == "__main__":
    main()
