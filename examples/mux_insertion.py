#!/usr/bin/env python3
"""Experiment E3 walk-through: AddMUX and the paper's Figure 1 structure.

Demonstrates, on a real netlist:

1. running ``AddMUX`` (both the fast slack method and the paper's literal
   insert-and-retime procedure, which must agree);
2. physically inserting the accepted MUXes and showing that the critical
   path delay is untouched while rejected insertions would lengthen it;
3. the resulting netlist in ``.bench`` form (the shift-enable wired MUX
   cells of Figure 1).

Run:  python examples/mux_insertion.py [circuit]
"""

import sys

from repro import load_circuit
from repro.cells import default_library
from repro.core import add_mux
from repro.netlist import write_bench
from repro.scan import MuxPlan, insert_muxes
from repro.techmap import technology_map
from repro.timing import LibraryDelay, run_sta


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "s344"
    library = default_library()
    circuit = technology_map(load_circuit(name, seed=1))

    base_sta = run_sta(circuit, LibraryDelay(circuit, library))
    print(f"{name}: critical path delay "
          f"{base_sta.critical_delay:.1f} ps, "
          f"{len(circuit.dff_outputs)} pseudo-inputs")

    fast = add_mux(circuit, library, method="slack")
    print(f"AddMUX (slack method): {len(fast.muxable)} accepted, "
          f"{len(fast.rejected)} rejected "
          f"({fast.coverage:.0%} coverage)")
    for q, reason in sorted(fast.rejected.items())[:5]:
        print(f"  rejected {q}: {reason} "
              f"(slack {fast.slack_ps[q]:.1f} ps vs "
              f"mux {fast.mux_delay_ps[q]:.1f} ps)")

    literal = add_mux(circuit, library, method="reinsert")
    agree = set(literal.muxable) == set(fast.muxable)
    print(f"Paper's literal insert-and-retime agrees: {agree}")

    plan = MuxPlan(tie_values={q: 0 for q in fast.muxable})
    rewritten = insert_muxes(circuit, plan)
    new_sta = run_sta(rewritten, LibraryDelay(rewritten, library))
    print(f"After inserting all {len(plan.tie_values)} MUXes: "
          f"critical delay {new_sta.critical_delay:.1f} ps "
          f"(unchanged: "
          f"{abs(new_sta.critical_delay - base_sta.critical_delay) < 1e-6})")
    print(f"Area overhead: {plan.area_overhead_um2(library):.1f} um^2")

    mux_lines = [line for line in write_bench(rewritten).splitlines()
                 if "MUX2" in line]
    print("\nInserted structure (first 5 MUX cells):")
    for line in mux_lines[:5]:
        print(f"  {line}")


if __name__ == "__main__":
    main()
