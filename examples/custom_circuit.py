#!/usr/bin/env python3
"""Using the library on your own design.

Builds a small sequential circuit programmatically (a 4-bit LFSR-ish
state machine with output logic), writes/reads it as ``.bench``, and runs
the complete low-power scan flow on it — the path a user would follow
with a private netlist instead of the bundled benchmarks.

Run:  python examples/custom_circuit.py
"""

from repro import (
    Circuit,
    FlowConfig,
    GateType,
    ProposedFlow,
    circuit_stats,
    parse_bench,
    write_bench,
)


def build_design() -> Circuit:
    c = Circuit("my_lfsr")
    for pi in ("enable", "din"):
        c.add_input(pi)
    # 4 state flops
    for i in range(4):
        c.add_gate(f"q{i}", GateType.DFF, (f"d{i}",))
    # feedback polynomial-ish next state with an enable gate-off
    c.add_gate("fb", GateType.XOR, ("q3", "q2"))
    c.add_gate("shift_in", GateType.MUX2, ("enable", "q0", "din"))
    c.add_gate("d0", GateType.XOR, ("fb", "shift_in"))
    c.add_gate("d1", GateType.BUFF, ("q0",))
    c.add_gate("d2", GateType.AND, ("q1", "enable"))
    c.add_gate("d3", GateType.OR, ("q2", "shift_in"))
    # observation logic
    c.add_gate("parity", GateType.XNOR, ("q0", "q1", "q2", "q3"))
    c.add_gate("busy", GateType.NAND, ("enable", "parity"))
    c.add_output("parity")
    c.add_output("busy")
    c.validate()
    return c


def main() -> None:
    circuit = build_design()
    print(circuit_stats(circuit).describe())

    # Round-trip through the interchange format.
    text = write_bench(circuit)
    print("\n.bench form:")
    for line in text.splitlines()[:8]:
        print(f"  {line}")
    print("  ...")
    reparsed = parse_bench(text, circuit.name)

    result = ProposedFlow(FlowConfig(seed=7)).run(reparsed)
    print()
    print(result.summary())
    ties = ", ".join(f"{q}={v}"
                     for q, v in sorted(result.mux_plan.tie_values.items()))
    print(f"\nMUX tie values: {ties or '(none)'}")
    pi_vals = ", ".join(f"{pi}={result.control_values[pi]}"
                        for pi in reparsed.inputs)
    print(f"Shift-mode PI pattern: {pi_vals}")


if __name__ == "__main__":
    main()
