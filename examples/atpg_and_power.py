#!/usr/bin/env python3
"""Scan-test power anatomy: ATPG, shift traffic and where energy goes.

Generates a compacted stuck-at test set for a benchmark, replays the full
scan episode under the three structures of the paper's Table I, and
breaks the numbers down: transitions, per-cycle energy profile, leakage.

Run:  python examples/atpg_and_power.py [circuit]
"""

import sys

import numpy as np

from repro import AtpgConfig, generate_tests, load_circuit
from repro.core import input_control_pattern
from repro.core.addmux import add_mux
from repro.core.find_pattern import find_controlled_input_pattern
from repro.leakage import monte_carlo_observability, random_fill_search
from repro.power import ShiftPolicy, evaluate_scan_power, \
    per_cycle_energy_fj
from repro.scan import ScanDesign
from repro.techmap import technology_map


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "s382"
    circuit = technology_map(load_circuit(name, seed=1))
    design = ScanDesign.full_scan(circuit)

    tests = generate_tests(design, AtpgConfig(seed=1))
    print(f"{name}: ATPG produced {tests.summary()}")
    print(f"Scan chain length {design.chain.length}; episode = "
          f"{len(tests.vectors)} x ({design.chain.length} shifts "
          f"+ 1 capture)")

    # --- the three structures ------------------------------------------
    traditional = ShiftPolicy(name="traditional")
    ic = input_control_pattern(circuit).policy()

    addmux = add_mux(circuit)
    controlled = set(circuit.inputs) | set(addmux.muxable)
    sources = set(circuit.dff_outputs) - set(addmux.muxable)
    obs = monte_carlo_observability(circuit, 256, seed=1)
    pattern = find_controlled_input_pattern(
        circuit, controlled, sources, observability=obs)
    fill = random_fill_search(
        circuit, pattern.assignment,
        sorted(controlled - set(pattern.assignment)),
        n_trials=64, seed=1, noise_lines=sorted(sources), n_noise=8)
    control = {**pattern.assignment, **fill.assignment}
    proposed = ShiftPolicy(
        name="proposed",
        pi_values={pi: control[pi] for pi in circuit.inputs},
        mux_ties={q: control[q] for q in addmux.muxable})

    print(f"\n{'structure':<14} {'dyn uW/Hz':>12} {'static uW':>10} "
          f"{'transitions':>12}")
    for policy in (traditional, ic, proposed):
        report = evaluate_scan_power(design, tests.vectors, policy)
        print(f"{policy.name:<14} {report.dynamic_uw_per_hz:>12.3e} "
              f"{report.static_uw:>10.2f} "
              f"{report.total_transitions:>12d}")

    # --- per-cycle energy profile ---------------------------------------
    profile = per_cycle_energy_fj(design, tests.vectors, proposed)
    trad_profile = per_cycle_energy_fj(design, tests.vectors, traditional)
    print(f"\nPer-cycle switching energy (fJ): "
          f"traditional mean {trad_profile.mean():.1f} "
          f"peak {trad_profile.max():.1f}; "
          f"proposed mean {profile.mean():.1f} "
          f"peak {profile.max():.1f}")
    quiet = int(np.sum(profile == 0.0))
    print(f"Proposed structure: {quiet}/{len(profile)} cycle boundaries "
          f"completely silent (blocked shift traffic)")


if __name__ == "__main__":
    main()
