#!/usr/bin/env python3
"""Extensions tour: multi-chain scan, peak power, and reordering.

The paper's closing remarks point beyond its own experiments: reordering
"can achieve further improvements", and industrial designs shift several
chains in parallel.  This example combines the implemented extensions on
one circuit:

1. chain-count sweep: test time vs shift power;
2. peak-power profile of traditional vs proposed shifting;
3. test-vector + chain reordering on top of traditional scan.

Run:  python examples/multichain_tradeoff.py [circuit]
"""

import sys

from repro import AtpgConfig, FlowConfig, ProposedFlow, generate_tests, \
    load_circuit
from repro.power import analyze_peak_power, evaluate_scan_power
from repro.scan import (
    MultiChainDesign,
    ScanDesign,
    evaluate_multichain_power,
    reorder_chain,
    reorder_vectors,
    total_test_cycles,
)


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "s382"
    result = ProposedFlow(FlowConfig(seed=1)).run(load_circuit(name,
                                                               seed=1))
    circuit = result.circuit
    vectors = result.test_set.vectors
    print(f"{name}: {len(vectors)} vectors, "
          f"{len(circuit.dff_gates)}-cell chain")

    # 1 -- chain count sweep --------------------------------------------
    print("\nChains  test-cycles  dyn uW/Hz    static uW")
    for n_chains in (1, 2, 4):
        design = MultiChainDesign.partition(circuit, n_chains)
        report = evaluate_multichain_power(design, vectors)
        cycles = total_test_cycles(design, len(vectors))
        print(f"{n_chains:>6}  {cycles:>11}  {report.dynamic_uw_per_hz:.3e}"
              f"  {report.static_uw:>9.2f}")

    # 2 -- peak power -----------------------------------------------------
    design = result.design
    trad_peak = analyze_peak_power(design, vectors)
    prop_peak = analyze_peak_power(design, vectors,
                                   result.policies["proposed"])
    print(f"\nPeak power: traditional {trad_peak.peak_fj:.0f} fJ "
          f"(crest {trad_peak.peak_to_mean:.1f}); "
          f"proposed {prop_peak.peak_fj:.0f} fJ "
          f"(crest {prop_peak.peak_to_mean:.1f}); "
          f"quiet boundaries {trad_peak.quiet_boundaries} -> "
          f"{prop_peak.quiet_boundaries}")

    # 3 -- reordering (the paper's "further improvements") ----------------
    base = evaluate_scan_power(design, vectors, include_capture=False)
    ordered_vectors, v_result = reorder_vectors(design, vectors)
    after_vectors = evaluate_scan_power(design, ordered_vectors,
                                        include_capture=False)
    new_design, remapped, c_result = reorder_chain(design,
                                                   ordered_vectors)
    after_both = evaluate_scan_power(new_design, remapped,
                                     include_capture=False)
    print("\nReordering on traditional scan (shift cycles only):")
    print(f"  baseline        : {base.dynamic_uw_per_hz:.3e} uW/Hz")
    print(f"  +vector reorder : {after_vectors.dynamic_uw_per_hz:.3e} "
          f"(Hamming cost {v_result.cost_before} -> "
          f"{v_result.cost_after})")
    print(f"  +chain reorder  : {after_both.dynamic_uw_per_hz:.3e} "
          f"(column cost {c_result.cost_before} -> "
          f"{c_result.cost_after})")


if __name__ == "__main__":
    main()
